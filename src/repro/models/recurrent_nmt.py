"""Recurrent (RNN / GRU) encoder-decoder translation models.

Covers two of the paper's comparators:

* the "attention-based" NMT of Bahdanau et al. (2014) — a GRU
  encoder-decoder with additive attention (Figure 8's baseline);
* the "pure RNN" serving model of Section III-G (Figure 9) whose decoder
  has constant per-step cost (Table V).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad, stack
from repro.models.base import DecodeState, Seq2SeqModel
from repro.models.config import ModelConfig
from repro.nn import (
    AdditiveAttention,
    Embedding,
    GRUCell,
    Linear,
    RecurrentDecoderCell,
    RecurrentEncoder,
    RNNCell,
)


def _make_cell(cell_type: str, input_size: int, hidden_size: int, rng) -> GRUCell | RNNCell:
    if cell_type == "gru":
        return GRUCell(input_size, hidden_size, rng=rng)
    if cell_type == "rnn":
        return RNNCell(input_size, hidden_size, rng=rng)
    raise ValueError(f"unknown cell type {cell_type!r} (expected 'rnn' or 'gru')")


class RecurrentNMT(Seq2SeqModel):
    """RNN/GRU encoder-decoder, optionally with Bahdanau attention.

    Parameters
    ----------
    config:
        ``config.cell_type`` selects ``"rnn"`` or ``"gru"`` for both sides;
        ``config.d_model`` is used as both the embedding and hidden width.
    use_attention:
        When True, the decoder attends over encoder outputs each step
        (the Bahdanau architecture).  When False, the decoder sees only the
        final encoder state — cheaper, and what the paper's pure-RNN
        serving variant uses.
    """

    def __init__(
        self,
        config: ModelConfig,
        use_attention: bool = True,
        pad_id: int = 0,
        sos_id: int = 1,
        eos_id: int = 2,
    ):
        super().__init__(config.vocab_size, pad_id, sos_id, eos_id)
        self.config = config
        self.use_attention = use_attention
        rng = np.random.default_rng(config.seed)
        d = config.d_model
        self.embedding = Embedding(config.vocab_size, d, padding_idx=pad_id, rng=rng)
        self.encoder = RecurrentEncoder(_make_cell(config.cell_type, d, d, rng))
        attention = AdditiveAttention(d, d, d, rng=rng) if use_attention else None
        decoder_input = d + d if use_attention else d
        self.decoder = RecurrentDecoderCell(
            _make_cell(config.cell_type, decoder_input, d, rng), attention
        )
        self.output_proj = Linear(d, config.vocab_size, rng=rng)

    # -- encoding ------------------------------------------------------------
    def encode(self, src: np.ndarray) -> tuple[Tensor, Tensor, np.ndarray]:
        """Returns (all encoder states, final state, pad mask)."""
        src = np.asarray(src)
        pad_mask = src == self.pad_id
        outputs, final = self.encoder(self.embedding(src), pad_mask=pad_mask)
        return outputs, final, pad_mask

    # -- training view -----------------------------------------------------------
    def forward(self, src: np.ndarray, tgt_in: np.ndarray) -> Tensor:
        tgt_in = np.asarray(tgt_in)
        memory, hidden, pad_mask = self.encode(src)
        embedded = self.embedding(tgt_in)
        step_logits: list[Tensor] = []
        for t in range(tgt_in.shape[1]):
            output, hidden = self.decoder.step(
                embedded[:, t, :],
                hidden,
                memory=memory if self.use_attention else None,
                memory_pad_mask=pad_mask if self.use_attention else None,
            )
            step_logits.append(self.output_proj(output))
        return stack(step_logits, axis=1)

    # -- decoding view ---------------------------------------------------------------
    def start(self, src: np.ndarray, use_cache: bool = True) -> DecodeState:
        """Encode ``src``; with ``use_cache=True``, precompute the
        additive attention's key projection of the memory so each decode
        step skips the one sub-computation that never changes
        (byte-identical outputs either way; no-op without attention).
        """
        src = np.asarray(src)
        with no_grad():
            memory, final, pad_mask = self.encode(src)
            payload = {
                "hidden": final.data,
                "memory": memory.data,
                "mem_pad": pad_mask,
            }
            if use_cache and self.use_attention:
                payload["mem_keys"] = self.decoder.attention.project_keys(memory)
        return DecodeState(batch_size=src.shape[0], payload=payload)

    def step(self, state: DecodeState, last_tokens: np.ndarray) -> tuple[np.ndarray, DecodeState]:
        """One recurrent decode step (constant cost in the prefix length)."""
        self._count_step(state.batch_size)
        with no_grad():
            embedded = self.embedding(np.asarray(last_tokens).reshape(-1, 1))[:, 0, :]
            output, hidden = self.decoder.step(
                embedded,
                Tensor(state.payload["hidden"]),
                memory=Tensor(state.payload["memory"]) if self.use_attention else None,
                memory_pad_mask=state.payload["mem_pad"] if self.use_attention else None,
                projected_keys=(
                    state.payload.get("mem_keys") if self.use_attention else None
                ),
            )
            logits = self.output_proj(output)
        new_payload = dict(state.payload)
        new_payload["hidden"] = hidden.data
        new_state = DecodeState(batch_size=state.batch_size, payload=new_payload)
        return logits.data, new_state

    def reorder_state(self, state: DecodeState, index: np.ndarray) -> DecodeState:
        """Select/duplicate batch rows, cached attention keys included."""
        return DecodeState(
            batch_size=len(index),
            payload={key: value[index] for key, value in state.payload.items()},
        )

    # -- introspection ------------------------------------------------------------
    def attention_map(self) -> np.ndarray | None:
        """Attention weights of the most recent decode step (if attending)."""
        if self.decoder.attention is None:
            return None
        return self.decoder.attention.last_weights


def AttentionNMT(config: ModelConfig, **kwargs) -> RecurrentNMT:
    """The Bahdanau attention-based model: GRU + additive attention."""
    if config.cell_type != "gru":
        config = config.scaled(cell_type="gru")
    return RecurrentNMT(config, use_attention=True, **kwargs)
