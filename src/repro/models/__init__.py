"""Neural machine translation models used by the query rewriter.

All models implement the :class:`Seq2SeqModel` interface (teacher-forcing
``forward`` for training; ``start``/``step`` incremental API for decoding):

* :class:`TransformerNMT` — the paper's main model (Table II: 4-layer
  query-to-title, 1-layer title-to-query).
* :class:`RecurrentNMT` — RNN or GRU encoder-decoder, optionally with
  Bahdanau additive attention (the paper's "attention-based" comparator,
  Figure 8, and the "pure RNN" serving model, Figure 9).
* :class:`HybridNMT` — transformer encoder + RNN decoder, the online-serving
  compromise of Section III-G (Figure 9, Table V).
"""

from repro.models.base import Seq2SeqModel, DecodeState
from repro.models.config import ModelConfig, paper_hyperparameters
from repro.models.transformer_nmt import TransformerNMT
from repro.models.recurrent_nmt import RecurrentNMT, AttentionNMT
from repro.models.hybrid_nmt import HybridNMT
from repro.models.lm import DecoderOnlyLM
from repro.models.io import save_weights, load_weights

__all__ = [
    "DecoderOnlyLM",
    "save_weights",
    "load_weights",
    "Seq2SeqModel",
    "DecodeState",
    "ModelConfig",
    "paper_hyperparameters",
    "TransformerNMT",
    "RecurrentNMT",
    "AttentionNMT",
    "HybridNMT",
]
