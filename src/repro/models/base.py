"""Common seq2seq model interface.

Two views of the same model:

* **Training** — ``forward(src, tgt_in)`` returns per-position logits under
  teacher forcing.
* **Decoding** — ``start(src)`` builds a :class:`DecodeState`, and
  ``step(state, last_tokens)`` advances one target position, returning the
  next-token logits.  The state object is immutable-by-convention: ``step``
  returns a new state, so branching decoders (beam search, top-n sampling)
  can keep several states alive and ``reorder`` them when beams shuffle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.nn.loss import sequence_cross_entropy
from repro.nn.module import Module


def pad_sources(sequences: list[list[int]], pad_id: int) -> np.ndarray:
    """Right-pad variable-length source id lists into one (batch, seq) array.

    The stacked-sequence entry point for batched decoding: every model's
    ``encode`` masks pad positions, so sources of different lengths can be
    pushed through the encoder in a single forward pass.
    """
    if not sequences:
        raise ValueError("pad_sources received no sequences")
    width = max(1, max(len(s) for s in sequences))
    out = np.full((len(sequences), width), pad_id, dtype=np.int64)
    for i, seq in enumerate(sequences):
        out[i, : len(seq)] = seq
    return out


@dataclass
class DecodeState:
    """Model-specific decoding state.

    ``payload`` is owned by the model; decoders only thread it through and
    call :meth:`reorder` when beam hypotheses are permuted/duplicated.
    """

    batch_size: int
    payload: dict[str, Any]

    def reorder(self, index: np.ndarray, model: "Seq2SeqModel") -> "DecodeState":
        """Select/duplicate batch entries according to ``index``."""
        return model.reorder_state(self, np.asarray(index))


class Seq2SeqModel(Module):
    """Base class for all translation models."""

    def __init__(self, vocab_size: int, pad_id: int, sos_id: int, eos_id: int):
        super().__init__()
        self.vocab_size = vocab_size
        self.pad_id = pad_id
        self.sos_id = sos_id
        self.eos_id = eos_id
        #: decode telemetry: number of ``step`` calls since the last reset
        self.decode_steps = 0
        #: decode telemetry: total rows stepped (sum of batch sizes across
        #: ``step`` calls) — with active-row compaction this grows strictly
        #: slower than ``decode_steps * batch``, which is the observable
        #: win the serving tier mirrors into its stats
        self.decode_rows = 0

    def _count_step(self, rows: int) -> None:
        """Tally one ``step`` call over ``rows`` batch rows."""
        self.decode_steps += 1
        self.decode_rows += rows

    def reset_decode_counters(self) -> None:
        """Zero the decode telemetry (callers sample deltas around decodes)."""
        self.decode_steps = 0
        self.decode_rows = 0

    # -- training view ------------------------------------------------------
    def forward(self, src: np.ndarray, tgt_in: np.ndarray) -> Tensor:  # pragma: no cover
        """Teacher-forcing logits of shape (batch, tgt_len, vocab)."""
        raise NotImplementedError

    def loss(self, src: np.ndarray, tgt_in: np.ndarray, tgt_out: np.ndarray,
             label_smoothing: float = 0.0) -> tuple[Tensor, int]:
        """Convenience: mean token cross entropy for a padded batch."""
        logits = self.forward(src, tgt_in)
        return sequence_cross_entropy(logits, tgt_out, self.pad_id, label_smoothing)

    # -- decoding view --------------------------------------------------------
    def start(self, src: np.ndarray) -> DecodeState:  # pragma: no cover
        """Encode sources and return the initial decode state."""
        raise NotImplementedError

    def step(self, state: DecodeState, last_tokens: np.ndarray) -> tuple[np.ndarray, DecodeState]:
        """Advance one step; returns (next-token logits as ndarray, new state).

        ``last_tokens`` is the (batch,) array of tokens emitted at the
        previous position (SOS for the first step).
        """
        raise NotImplementedError  # pragma: no cover

    def reorder_state(self, state: DecodeState, index: np.ndarray) -> DecodeState:  # pragma: no cover
        raise NotImplementedError

    # -- scoring ---------------------------------------------------------------
    def sequence_log_prob(self, src: np.ndarray, tgt: np.ndarray) -> np.ndarray:
        """log P(tgt | src) per batch element, summed over non-pad positions.

        ``tgt`` must include SOS and EOS.  Used by the inference pipeline to
        score candidate rewrites (Section III-E) and by the cyclic loss
        diagnostics.
        """
        src = np.asarray(src)
        tgt = np.asarray(tgt)
        with no_grad():
            logits = self.forward(src, tgt[:, :-1])
        log_probs = logits.log_softmax(axis=-1).data
        labels = tgt[:, 1:]
        batch, seq_len = labels.shape
        picked = log_probs[np.arange(batch)[:, None], np.arange(seq_len)[None, :], labels]
        mask = labels != self.pad_id
        return (picked * mask).sum(axis=1)

    def token_accuracy(self, src: np.ndarray, tgt_in: np.ndarray, tgt_out: np.ndarray) -> float:
        """Fraction of non-pad positions predicted correctly (paper Fig 7c)."""
        with no_grad():
            logits = self.forward(src, tgt_in)
        predictions = logits.data.argmax(axis=-1)
        mask = tgt_out != self.pad_id
        correct = ((predictions == tgt_out) & mask).sum()
        return float(correct) / max(1, int(mask.sum()))
