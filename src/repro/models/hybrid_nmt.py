"""Hybrid model: transformer encoder + recurrent decoder (Section III-G).

The paper's online-serving analysis found the transformer *decoder* to be
the latency bottleneck (its per-step cost grows with the prefix length)
while the transformer *encoder* runs once per query and is cheap (Table V).
The deployed long-tail model therefore keeps the transformer encoder and
swaps in an RNN decoder with attention; Figure 9 shows this hybrid clearly
beats a pure-RNN model on quality.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad, stack
from repro.models.base import DecodeState, Seq2SeqModel
from repro.models.config import ModelConfig
from repro.nn import (
    AdditiveAttention,
    Embedding,
    GRUCell,
    Linear,
    PositionalEncoding,
    RecurrentDecoderCell,
    RNNCell,
    TransformerEncoder,
)
from repro.nn.attention import padding_mask


class HybridNMT(Seq2SeqModel):
    """Transformer encoder + RNN/GRU decoder with additive attention."""

    def __init__(self, config: ModelConfig, pad_id: int = 0, sos_id: int = 1, eos_id: int = 2):
        super().__init__(config.vocab_size, pad_id, sos_id, eos_id)
        self.config = config
        rng = np.random.default_rng(config.seed)
        d = config.d_model
        self.embedding = Embedding(config.vocab_size, d, padding_idx=pad_id, rng=rng)
        self.positional = PositionalEncoding(d, max_len=config.max_len)
        self.encoder = TransformerEncoder(
            config.encoder_layers, d, config.num_heads, config.d_ff,
            dropout=config.dropout, rng=rng,
        )
        cell_cls = GRUCell if config.cell_type == "gru" else RNNCell
        self.decoder = RecurrentDecoderCell(
            cell_cls(d + d, d, rng=rng), AdditiveAttention(d, d, d, rng=rng)
        )
        self.output_proj = Linear(d, config.vocab_size, rng=rng)
        self._embed_scale = d**0.5

    def encode(self, src: np.ndarray) -> tuple[Tensor, np.ndarray, np.ndarray]:
        """Returns (memory, attention pad mask (batch, seq), 4-d key mask)."""
        src = np.asarray(src)
        key_mask = padding_mask(src, self.pad_id)
        embedded = self.positional(self.embedding(src) * self._embed_scale)
        memory = self.encoder(embedded, mask=key_mask)
        return memory, src == self.pad_id, key_mask

    def _initial_hidden(self, memory: Tensor, pad_mask: np.ndarray) -> Tensor:
        """Mean-pool non-pad encoder states as the decoder's start state."""
        keep = (~pad_mask).astype(np.float64)[:, :, None]
        denominator = np.maximum(keep.sum(axis=1), 1.0)
        return (memory * Tensor(keep)).sum(axis=1) / Tensor(denominator)

    # -- training view -------------------------------------------------------
    def forward(self, src: np.ndarray, tgt_in: np.ndarray) -> Tensor:
        tgt_in = np.asarray(tgt_in)
        memory, pad_mask, _ = self.encode(src)
        hidden = self._initial_hidden(memory, pad_mask)
        embedded = self.embedding(tgt_in)
        step_logits: list[Tensor] = []
        for t in range(tgt_in.shape[1]):
            output, hidden = self.decoder.step(
                embedded[:, t, :], hidden, memory=memory, memory_pad_mask=pad_mask
            )
            step_logits.append(self.output_proj(output))
        return stack(step_logits, axis=1)

    # -- decoding view ----------------------------------------------------------
    def start(self, src: np.ndarray) -> DecodeState:
        src = np.asarray(src)
        with no_grad():
            memory, pad_mask, _ = self.encode(src)
            hidden = self._initial_hidden(memory, pad_mask)
        return DecodeState(
            batch_size=src.shape[0],
            payload={"hidden": hidden.data, "memory": memory.data, "mem_pad": pad_mask},
        )

    def step(self, state: DecodeState, last_tokens: np.ndarray) -> tuple[np.ndarray, DecodeState]:
        with no_grad():
            embedded = self.embedding(np.asarray(last_tokens).reshape(-1, 1))[:, 0, :]
            output, hidden = self.decoder.step(
                embedded,
                Tensor(state.payload["hidden"]),
                memory=Tensor(state.payload["memory"]),
                memory_pad_mask=state.payload["mem_pad"],
            )
            logits = self.output_proj(output)
        new_state = DecodeState(
            batch_size=state.batch_size,
            payload={
                "hidden": hidden.data,
                "memory": state.payload["memory"],
                "mem_pad": state.payload["mem_pad"],
            },
        )
        return logits.data, new_state

    def reorder_state(self, state: DecodeState, index: np.ndarray) -> DecodeState:
        payload = state.payload
        return DecodeState(
            batch_size=len(index),
            payload={
                "hidden": payload["hidden"][index],
                "memory": payload["memory"][index],
                "mem_pad": payload["mem_pad"][index],
            },
        )
