"""Hybrid model: transformer encoder + recurrent decoder (Section III-G).

The paper's online-serving analysis found the transformer *decoder* to be
the latency bottleneck (its per-step cost grows with the prefix length)
while the transformer *encoder* runs once per query and is cheap (Table V).
The deployed long-tail model therefore keeps the transformer encoder and
swaps in an RNN decoder with attention; Figure 9 shows this hybrid clearly
beats a pure-RNN model on quality.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad, stack
from repro.models.base import DecodeState, Seq2SeqModel
from repro.models.config import ModelConfig
from repro.nn import (
    AdditiveAttention,
    Embedding,
    GRUCell,
    Linear,
    PositionalEncoding,
    RecurrentDecoderCell,
    RNNCell,
    TransformerEncoder,
)
from repro.nn.attention import padding_mask


class HybridNMT(Seq2SeqModel):
    """Transformer encoder + RNN/GRU decoder with additive attention."""

    def __init__(self, config: ModelConfig, pad_id: int = 0, sos_id: int = 1, eos_id: int = 2):
        super().__init__(config.vocab_size, pad_id, sos_id, eos_id)
        self.config = config
        rng = np.random.default_rng(config.seed)
        d = config.d_model
        self.embedding = Embedding(config.vocab_size, d, padding_idx=pad_id, rng=rng)
        self.positional = PositionalEncoding(d, max_len=config.max_len)
        self.encoder = TransformerEncoder(
            config.encoder_layers, d, config.num_heads, config.d_ff,
            dropout=config.dropout, rng=rng,
        )
        cell_cls = GRUCell if config.cell_type == "gru" else RNNCell
        self.decoder = RecurrentDecoderCell(
            cell_cls(d + d, d, rng=rng), AdditiveAttention(d, d, d, rng=rng)
        )
        self.output_proj = Linear(d, config.vocab_size, rng=rng)
        self._embed_scale = d**0.5

    def encode(self, src: np.ndarray) -> tuple[Tensor, np.ndarray, np.ndarray]:
        """Returns (memory, attention pad mask (batch, seq), 4-d key mask)."""
        src = np.asarray(src)
        key_mask = padding_mask(src, self.pad_id)
        embedded = self.positional(self.embedding(src) * self._embed_scale)
        memory = self.encoder(embedded, mask=key_mask)
        return memory, src == self.pad_id, key_mask

    def _initial_hidden(self, memory: Tensor, pad_mask: np.ndarray) -> Tensor:
        """Mean-pool non-pad encoder states as the decoder's start state."""
        keep = (~pad_mask).astype(np.float64)[:, :, None]
        denominator = np.maximum(keep.sum(axis=1), 1.0)
        return (memory * Tensor(keep)).sum(axis=1) / Tensor(denominator)

    # -- training view -------------------------------------------------------
    def forward(self, src: np.ndarray, tgt_in: np.ndarray) -> Tensor:
        tgt_in = np.asarray(tgt_in)
        memory, pad_mask, _ = self.encode(src)
        hidden = self._initial_hidden(memory, pad_mask)
        embedded = self.embedding(tgt_in)
        step_logits: list[Tensor] = []
        for t in range(tgt_in.shape[1]):
            output, hidden = self.decoder.step(
                embedded[:, t, :], hidden, memory=memory, memory_pad_mask=pad_mask
            )
            step_logits.append(self.output_proj(output))
        return stack(step_logits, axis=1)

    # -- decoding view ----------------------------------------------------------
    def start(self, src: np.ndarray, use_cache: bool = True) -> DecodeState:
        """Encode ``src`` once; optionally precompute attention keys.

        The transformer half (the encoder) runs exactly once either way.
        With ``use_cache=True`` the additive attention's key projection of
        the memory — the only per-step quantity that does not depend on
        the decode prefix — is computed here and reused every step,
        byte-identically.  ``use_cache=False`` re-projects per step (the
        seed cost profile, kept as the measured baseline).
        """
        src = np.asarray(src)
        with no_grad():
            memory, pad_mask, _ = self.encode(src)
            hidden = self._initial_hidden(memory, pad_mask)
            payload = {
                "hidden": hidden.data,
                "memory": memory.data,
                "mem_pad": pad_mask,
            }
            if use_cache:
                payload["mem_keys"] = self.decoder.attention.project_keys(memory)
        return DecodeState(batch_size=src.shape[0], payload=payload)

    def step(self, state: DecodeState, last_tokens: np.ndarray) -> tuple[np.ndarray, DecodeState]:
        """One recurrent decode step (constant cost in the prefix length).

        Reuses the cached attention key projection when the state carries
        one; outputs are byte-identical with or without the cache.
        """
        self._count_step(state.batch_size)
        with no_grad():
            embedded = self.embedding(np.asarray(last_tokens).reshape(-1, 1))[:, 0, :]
            output, hidden = self.decoder.step(
                embedded,
                Tensor(state.payload["hidden"]),
                memory=Tensor(state.payload["memory"]),
                memory_pad_mask=state.payload["mem_pad"],
                projected_keys=state.payload.get("mem_keys"),
            )
            logits = self.output_proj(output)
        new_payload = dict(state.payload)
        new_payload["hidden"] = hidden.data
        new_state = DecodeState(batch_size=state.batch_size, payload=new_payload)
        return logits.data, new_state

    def reorder_state(self, state: DecodeState, index: np.ndarray) -> DecodeState:
        """Select/duplicate batch rows, cached attention keys included."""
        return DecodeState(
            batch_size=len(index),
            payload={key: value[index] for key, value in state.payload.items()},
        )
