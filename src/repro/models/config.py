"""Model configuration, including the paper's Table II hyperparameters."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ModelConfig:
    """Hyperparameters shared by all model families.

    Defaults are the scaled-down values used throughout this reproduction
    (NumPy on CPU); :func:`paper_hyperparameters` returns the full-size
    values the paper reports in Table II.
    """

    vocab_size: int = 256
    d_model: int = 32
    num_heads: int = 4
    d_ff: int = 64
    encoder_layers: int = 2
    decoder_layers: int = 1
    dropout: float = 0.1
    max_len: int = 64
    cell_type: str = "gru"  # for recurrent models: "rnn" | "gru"
    seed: int = 0

    def scaled(self, **overrides) -> "ModelConfig":
        """Copy with overrides (dataclasses.replace convenience)."""
        from dataclasses import replace

        return replace(self, **overrides)


def paper_hyperparameters() -> dict[str, dict[str, object]]:
    """The paper's Table II, verbatim.

    These are too large to train on the NumPy substrate but are recorded so
    the experiment harness can print the table and so users can see exactly
    what was scaled down.
    """
    return {
        "query_to_title": {
            "transformer_layers": 4,
            "num_heads": 8,
            "feed_forward_hidden": 1024,
            "embedding_dim": 512,
            "dropout": 0.1,
        },
        "title_to_query": {
            "transformer_layers": 1,
            "num_heads": 8,
            "feed_forward_hidden": 1024,
            "embedding_dim": 512,
            "dropout": 0.1,
        },
        "optimizer": {
            "name": "adam",
            "learning_rate": 0.05,
            "beta1": 0.9,
            "beta2": 0.999,
            "epsilon": 1e-8,
            "schedule": "noam",
        },
        "training": {
            "lambda_cyclic": 0.1,
            "beam_width_k": 3,
            "top_n": 40,
        },
    }


def reproduction_forward_config(vocab_size: int, seed: int = 0) -> ModelConfig:
    """Scaled-down query-to-title config (4 layers in the paper -> 2 here)."""
    return ModelConfig(
        vocab_size=vocab_size,
        d_model=32,
        num_heads=4,
        d_ff=64,
        encoder_layers=2,
        decoder_layers=2,
        dropout=0.0,
        seed=seed,
    )


def reproduction_backward_config(vocab_size: int, seed: int = 1) -> ModelConfig:
    """Scaled-down title-to-query config (1 layer, as in the paper)."""
    return ModelConfig(
        vocab_size=vocab_size,
        d_model=32,
        num_heads=4,
        d_ff=64,
        encoder_layers=1,
        decoder_layers=1,
        dropout=0.0,
        seed=seed,
    )
