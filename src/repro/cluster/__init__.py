"""Cluster tier: pluggable shard backends, worker processes, replicas.

The GIL-breaking layer under the sharded retrieval facades.  A
:class:`ShardBackend` owns one tier's per-shard index state and
executes the named ops of :mod:`repro.cluster.ops` against it —
in-process with threads (:class:`InprocBackend`, today's behavior byte
for byte) or as one ``multiprocessing`` worker per shard serving RPCs
over pipes (:class:`ProcessBackend`, cold-startable from
:class:`~repro.store.SegmentStore` segments).  :class:`ReplicaRouter`
fronts N state-identical replicas with health-checked routing,
broadcast writes, and transparent failover on liveness errors.

See ``docs/CLUSTER.md`` for the architecture, failure semantics, and
determinism guarantees.
"""

from repro.cluster.backend import InprocBackend, ProcessBackend, ShardBackend
from repro.cluster.errors import (
    ClusterError,
    NoHealthyReplicaError,
    ShardTimeoutError,
    ShardUnavailableError,
    ShardWorkerError,
)
from repro.cluster.ops import MUTATING_OPS, OPS
from repro.cluster.pool import LazyExecutor, clamp_workers
from repro.cluster.replica import ReplicaRouter

__all__ = [
    "ClusterError",
    "InprocBackend",
    "LazyExecutor",
    "MUTATING_OPS",
    "NoHealthyReplicaError",
    "OPS",
    "ProcessBackend",
    "ReplicaRouter",
    "ShardBackend",
    "ShardTimeoutError",
    "ShardUnavailableError",
    "ShardWorkerError",
    "clamp_workers",
]
