"""One shared lazy thread-pool lifecycle for every fan-out consumer.

:class:`ShardedIndex` and :class:`ShardedVectorIndex` used to carry
copy-pasted ``_ensure_executor`` bodies that sized the pool to
``num_shards`` unconditionally — 8 shards meant 8 threads even on a
1-core box, and the duplicated lifecycle invited drift.
:class:`LazyExecutor` centralizes the idiom: created on first use,
clamped to the machine (``min(num_shards, os.cpu_count())``), shut down
explicitly via :meth:`close` or the context-manager protocol, and safe
to reuse after a close (the next submit recreates the pool).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Callable, Iterable, Iterator


def clamp_workers(requested: int) -> int:
    """Pool size for ``requested`` parallel tasks on this machine.

    ``min(requested, os.cpu_count())``, never below 1.  More threads
    than cores cannot run concurrently under the GIL anyway; they only
    add scheduling overhead and idle stacks.
    """
    return max(1, min(requested, os.cpu_count() or 1))


class LazyExecutor:
    """A :class:`ThreadPoolExecutor` that exists only while needed.

    Thread-safe lazy creation; idempotent :meth:`close`; usable as a
    context manager.  ``max_workers`` is clamped by
    :func:`clamp_workers` at creation time.
    """

    def __init__(self, max_workers: int, *, thread_name_prefix: str = "fan-out"):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = clamp_workers(max_workers)
        self.thread_name_prefix = thread_name_prefix
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    @property
    def running(self) -> bool:
        """True while a pool is live (between first use and close)."""
        return self._executor is not None

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix=self.thread_name_prefix,
                )
            return self._executor

    def map(self, fn: Callable, items: Iterable) -> Iterator:
        """``executor.map`` through the lazily created pool."""
        return self._ensure().map(fn, items)

    def close(self) -> None:
        """Shut the pool down and release its threads (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "LazyExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
