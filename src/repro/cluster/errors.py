"""Typed errors for the cluster tier, split by failover semantics.

The split matters: the :class:`~repro.cluster.replica.ReplicaRouter`
reroutes a request to another replica **only** on a *liveness* failure
(:class:`ShardUnavailableError` and subclasses) — a dead worker, a
broken pipe, a timed-out reply.  *Application* errors (a duplicate add,
an unknown doc id) propagate with their original exception type, because
every replica holds the same state and would fail the same way;
rerouting those would just repeat the failure while hiding the cause.
"""

from __future__ import annotations


class ClusterError(RuntimeError):
    """Base class for every cluster-tier failure."""


class ShardUnavailableError(ClusterError):
    """A shard's backing worker or backend is not serving (liveness).

    Raised for dead processes, closed/broken pipes, and backends that
    were killed by failure injection.  This is the only error family the
    replica router treats as grounds for failover.
    """


class ShardTimeoutError(ShardUnavailableError):
    """A shard worker missed its reply deadline.

    The worker is killed when this is raised — after a missed deadline
    the request/reply pipe is desynchronized, so the only safe recovery
    is a respawn from segments.
    """


class ShardWorkerError(ClusterError):
    """A worker raised an exception that could not be reconstructed.

    Application errors cross the pipe as ``(module, qualname, args)`` and
    are re-raised in the parent with their original type; when that
    rebuild fails (exotic constructor, unpicklable args) this wrapper
    carries the remote type name and traceback instead.  Not a liveness
    error: the router will not reroute it.
    """


class NoHealthyReplicaError(ClusterError):
    """Every replica is unhealthy; the request cannot be served."""
