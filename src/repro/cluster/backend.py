"""Pluggable shard backends: threads in-process, or workers over pipes.

A :class:`ShardBackend` owns the per-shard index state of one retrieval
tier and executes the named operations of :mod:`repro.cluster.ops`
against it.  The sharded facades (:class:`~repro.search.sharded.
ShardedIndex`, :class:`~repro.search.vector.ShardedVectorIndex`) hold a
backend instead of executors and locks, so *where* a shard runs — a
thread in this process or a ``multiprocessing`` worker — is a
deployment choice, invisible to relevance:

* :class:`InprocBackend` — today's behavior, byte for byte: one
  single-writer (index, mutex) pair per shard, fan-out through one
  shared clamped :class:`~repro.cluster.pool.LazyExecutor`.
* :class:`ProcessBackend` — one daemon worker *process* per shard,
  breaking the GIL for search fan-out.  Workers boot either from a
  pickled seed index or cold-start from a
  :class:`~repro.store.SegmentStore` shard chain, then serve
  ``(op, args)`` requests over a duplex pipe.  Both backends run the
  exact same handler functions, so results are identical by
  construction.

Failure semantics: application errors (duplicate add, unknown id) cross
the pipe as ``(module, qualname, args, traceback)`` and are re-raised
in the parent with their original type, annotated with the shard id and
remote traceback.  Liveness failures — dead process, broken pipe,
missed deadline — raise :class:`~repro.cluster.errors.
ShardUnavailableError` / :class:`~repro.cluster.errors.
ShardTimeoutError`, the only family the replica router reroutes.
"""

from __future__ import annotations

import contextlib
import importlib
import multiprocessing
import pickle
import time
import threading
import traceback

from repro.cluster.errors import (
    ShardTimeoutError,
    ShardUnavailableError,
    ShardWorkerError,
)
from repro.cluster.ops import OPS
from repro.cluster.pool import LazyExecutor

#: seconds a worker gets to finish booting (segment decode included)
BOOT_TIMEOUT = 120.0
#: seconds a closing backend waits for workers to exit gracefully
SHUTDOWN_TIMEOUT = 5.0


def _annotate(error: BaseException, note: str) -> BaseException:
    """Attach shard context to an exception (no-op before Python 3.11)."""
    if hasattr(error, "add_note"):
        error.add_note(note)
    return error


class ShardBackend:
    """The backend contract shared by in-process and worker deployments.

    A backend exposes its ``tier`` (``"lexical"`` or ``"vector"``), its
    ``num_shards``, and four verbs:

    * :meth:`call` — run one op on one shard.
    * :meth:`fanout` — run one op on every shard, in parallel, returning
      per-shard results in shard order.
    * :meth:`quiesce` — a context manager yielding every shard's index
      object with writes excluded, for persistence snapshots.
    * :meth:`close` — release threads/processes (idempotent).

    ``kill()`` poisons the backend for failure injection: every
    subsequent op raises :class:`ShardUnavailableError`, which is how
    the replica router discovers a dead replica organically.
    """

    #: human-readable backend kind, e.g. ``"inproc"`` / ``"process"``
    name = "abstract"
    tier: str
    num_shards: int

    def call(self, shard_id: int, op: str, *args):
        """Run ``op`` on one shard and return its result."""
        raise NotImplementedError

    def fanout(self, op: str, *args) -> list:
        """Run ``op`` on every shard in parallel; results in shard order."""
        raise NotImplementedError

    def quiesce(self):
        """Context manager yielding the per-shard index list, writes excluded."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the backend's resources (idempotent)."""
        raise NotImplementedError

    def kill(self) -> None:
        """Failure injection: make every subsequent op fail as unavailable."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Deployment counters for :class:`~repro.core.serving.ServingStats`.

        Routers override this with real failover numbers; a bare backend
        reports itself as one healthy replica.
        """
        return {
            "backend": self.name,
            "num_shards": self.num_shards,
            "replicas": 1,
            "healthy_replicas": 0 if getattr(self, "_dead", False) else 1,
            "failovers": 0,
            "rerouted_requests": 0,
            "respawns": 0,
        }

    def __enter__(self) -> "ShardBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _InprocShard:
    """One single-writer partition: an index plus its mutex."""

    __slots__ = ("index", "lock")

    def __init__(self, index):
        self.index = index
        self.lock = threading.Lock()


class InprocBackend(ShardBackend):
    """Shards as (index, mutex) pairs in this process — the thread fan-out.

    Preserves the pre-backend semantics exactly: writers lock only the
    owning shard, a search holds each shard's mutex for that shard's
    local evaluation, and parallel fan-out runs through one shared
    :class:`LazyExecutor` clamped to the machine's core count.
    """

    name = "inproc"

    def __init__(self, tier: str, *, num_shards: int | None = None,
                 indexes: list | None = None, parallel: bool = True):
        """Wrap ``indexes`` (one per shard), or create ``num_shards``
        empty lexical shards (the vector tier's geometry lives in its
        indexes, so it must always pass them)."""
        if tier not in OPS:
            raise ValueError(f"unknown tier {tier!r}; expected one of {sorted(OPS)}")
        if indexes is None:
            if num_shards is None or num_shards < 1:
                raise ValueError("num_shards must be >= 1")
            if tier != "lexical":
                raise ValueError("pass indexes to build a non-lexical backend")
            from repro.search.inverted_index import InvertedIndex

            indexes = [InvertedIndex() for _ in range(num_shards)]
        elif not indexes:
            raise ValueError("indexes must name at least one shard")
        self.tier = tier
        self.num_shards = len(indexes)
        self.parallel = parallel and self.num_shards > 1
        self._shards = [_InprocShard(index) for index in indexes]
        self._pool = LazyExecutor(
            self.num_shards, thread_name_prefix=f"{tier}-shard"
        )
        self._dead = False

    def _check_alive(self) -> None:
        if self._dead:
            raise ShardUnavailableError(
                f"{self.tier} inproc backend was killed"
            )

    def call(self, shard_id: int, op: str, *args):
        """Run ``op`` under the owning shard's mutex.

        Application errors propagate with their original type, annotated
        with the shard id (the satellite fix: no more bare
        ``future.result()`` tracebacks with the shard unidentifiable).
        """
        self._check_alive()
        shard = self._shards[shard_id]
        with shard.lock:
            try:
                return OPS[self.tier][op](shard.index, *args)
            except ShardUnavailableError:
                raise
            except Exception as error:
                raise _annotate(
                    error, f"shard {shard_id} ({self.tier} {op!r}, inproc)"
                )

    def fanout(self, op: str, *args) -> list:
        """Run ``op`` on every shard, through the pool when parallel."""
        self._check_alive()
        run = lambda shard_id: self.call(shard_id, op, *args)  # noqa: E731
        if self.parallel:
            return list(self._pool.map(run, range(self.num_shards)))
        return [run(shard_id) for shard_id in range(self.num_shards)]

    @contextlib.contextmanager
    def quiesce(self):
        """Hold every shard mutex and yield the live index list."""
        self._check_alive()
        with contextlib.ExitStack() as stack:
            for shard in self._shards:
                stack.enter_context(shard.lock)
            yield [shard.index for shard in self._shards]

    def kill(self) -> None:
        """Poison the backend: every later op raises unavailable."""
        self._dead = True

    def close(self) -> None:
        """Shut down the fan-out pool (idempotent)."""
        self._pool.close()


# -- worker process -----------------------------------------------------------
def _encode_error() -> tuple:
    """``(module, qualname, args, traceback)`` of the active exception."""
    import sys

    exc_type, exc, _ = sys.exc_info()
    try:
        args = tuple(exc.args)
        pickle.dumps(args)
    except Exception:
        args = (str(exc),)
    return (exc_type.__module__, exc_type.__qualname__, args, traceback.format_exc())


def _rebuild_error(shard_id: int, op: str, info: tuple) -> BaseException:
    """Re-raise material: the original exception type where possible."""
    module, qualname, args, remote_tb = info
    error: BaseException | None = None
    try:
        obj = importlib.import_module(module)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            error = obj(*args)
    except Exception:
        error = None
    if error is None:
        error = ShardWorkerError(
            f"worker raised {module}.{qualname}{args!r}"
        )
    return _annotate(
        error,
        f"shard {shard_id} ({op!r}) failed in its worker process; "
        f"remote traceback:\n{remote_tb}",
    )


def _boot_index(tier: str, boot: tuple):
    """Materialize a worker's shard index from its boot spec.

    ``("state", index)`` — a seed index shipped from the parent.
    ``("store", root, shard_id)`` — cold start: decode this shard's
    base+delta chain from the segment store (checksums and routing
    verified by the store).
    """
    kind = boot[0]
    if kind == "state":
        return boot[1]
    if kind == "store":
        from repro.store import SegmentStore

        _, root, shard_id = boot
        return SegmentStore(root, tier).load_shard(shard_id)
    raise ValueError(f"unknown worker boot spec {kind!r}")


def _worker_main(conn, tier: str, boot: tuple) -> None:
    """A shard worker: boot, handshake, then serve ``(op, args)`` forever.

    Replies are ``("ok", result)`` or ``("err", encoded)``; a ``None``
    request is the shutdown sentinel.  Any boot failure is reported
    through the handshake so the parent re-raises the real exception
    (e.g. a :class:`~repro.store.SegmentCorruptError`).
    """
    try:
        index = _boot_index(tier, boot)
    except BaseException:
        with contextlib.suppress(Exception):
            conn.send(("err", _encode_error()))
            conn.close()
        return
    conn.send(("ok", ("ready", len(index))))
    handlers = OPS[tier]
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        if request is None:
            break
        op, args = request
        try:
            reply = ("ok", handlers[op](index, *args))
        except BaseException:
            reply = ("err", _encode_error())
        try:
            conn.send(reply)
        except BaseException:
            with contextlib.suppress(Exception):
                conn.send(("err", _encode_error()))
    with contextlib.suppress(Exception):
        conn.close()


class _Worker:
    """Parent-side handle on one shard worker."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn


class ProcessBackend(ShardBackend):
    """Shards as ``multiprocessing`` workers serving RPCs over pipes.

    Each shard runs :func:`_worker_main` in a daemon process.  Workers
    are seeded either from live ``indexes`` (shipped once at spawn) or
    cold-started from a ``store_root`` segment store — the respawn path
    the replica router uses after a failure.  Fan-out sends every
    request before collecting any reply, so shards compute concurrently
    across cores; the request tuple is pickled once and broadcast as raw
    bytes.

    ``timeout`` (seconds, per request) bounds every reply wait; a missed
    deadline kills that worker — after a timeout the pipe is
    desynchronized, so respawn-from-segments is the only safe recovery —
    and raises :class:`ShardTimeoutError`.
    """

    name = "process"

    def __init__(self, tier: str, *, indexes: list | None = None,
                 store_root=None, timeout: float | None = None,
                 start_method: str | None = None):
        """Boot one worker per shard from ``indexes`` or ``store_root``."""
        if tier not in OPS:
            raise ValueError(f"unknown tier {tier!r}; expected one of {sorted(OPS)}")
        if (indexes is None) == (store_root is None):
            raise ValueError("pass exactly one of indexes / store_root")
        self.tier = tier
        self.timeout = timeout
        self._store_root = None if store_root is None else str(store_root)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        if indexes is not None:
            if not indexes:
                raise ValueError("indexes must name at least one shard")
            self.num_shards = len(indexes)
        else:
            from repro.store import SegmentStore

            self.num_shards = SegmentStore(store_root, tier).manifest().num_shards
        self._workers: list[_Worker | None] = [None] * self.num_shards
        self._dead = False
        try:
            for shard_id in range(self.num_shards):
                boot = (
                    ("state", indexes[shard_id])
                    if indexes is not None
                    else ("store", self._store_root, shard_id)
                )
                self._spawn(shard_id, boot)
        except BaseException:
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------------
    def _spawn(self, shard_id: int, boot: tuple) -> None:
        """Start one worker and wait for its ready handshake."""
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.tier, boot),
            daemon=True,
            name=f"{self.tier}-shard-{shard_id}",
        )
        process.start()
        child_conn.close()
        worker = _Worker(process, parent_conn)
        self._workers[shard_id] = worker
        status, payload = self._recv(shard_id, "boot", deadline_seconds=BOOT_TIMEOUT)
        if status != "ok":
            raise _rebuild_error(shard_id, "boot", payload)

    def respawn_worker(self, shard_id: int) -> None:
        """Cold-start a replacement worker from the segment store.

        Only available for store-booted backends: the store root is the
        durable artifact a respawned worker restores from (the
        kill-and-respawn fingerprint tests assert it restores to the
        exact persisted state).
        """
        if self._store_root is None:
            raise ShardWorkerError(
                "respawn requires a store-backed ProcessBackend"
            )
        self.kill_worker(shard_id)
        self._spawn(shard_id, ("store", self._store_root, shard_id))

    def kill_worker(self, shard_id: int) -> None:
        """Hard-kill one worker (failure injection; idempotent)."""
        worker = self._workers[shard_id]
        if worker is None:
            return
        self._workers[shard_id] = None
        with contextlib.suppress(Exception):
            worker.conn.close()
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(SHUTDOWN_TIMEOUT)

    def kill(self) -> None:
        """Failure injection: kill every worker and poison the backend."""
        self._dead = True
        for shard_id in range(self.num_shards):
            self.kill_worker(shard_id)

    def close(self) -> None:
        """Graceful shutdown: sentinel, join, then kill stragglers."""
        for worker in self._workers:
            if worker is not None:
                with contextlib.suppress(Exception):
                    worker.conn.send(None)
        for shard_id, worker in enumerate(self._workers):
            if worker is None:
                continue
            worker.process.join(SHUTDOWN_TIMEOUT)
            self.kill_worker(shard_id)

    # -- request/reply -------------------------------------------------------
    def _worker_for(self, shard_id: int) -> _Worker:
        if self._dead:
            raise ShardUnavailableError(
                f"{self.tier} process backend was killed"
            )
        worker = self._workers[shard_id]
        if worker is None:
            raise ShardUnavailableError(
                f"shard {shard_id} has no live worker"
            )
        return worker

    def _send(self, shard_id: int, payload: bytes) -> None:
        worker = self._worker_for(shard_id)
        try:
            worker.conn.send_bytes(payload)
        except (OSError, ValueError, BrokenPipeError) as error:
            self.kill_worker(shard_id)
            raise _annotate(
                ShardUnavailableError(
                    f"shard {shard_id} worker pipe is down: {error}"
                ),
                f"shard {shard_id} ({self.tier}) send failed",
            ) from None

    def _recv(self, shard_id: int, op: str, *, deadline_seconds: float | None):
        """One reply off the wire; kills the worker on timeout/EOF."""
        worker = self._worker_for(shard_id)
        if deadline_seconds is not None:
            if not worker.conn.poll(deadline_seconds):
                self.kill_worker(shard_id)
                raise ShardTimeoutError(
                    f"shard {shard_id} ({self.tier} {op!r}) missed its "
                    f"{deadline_seconds:.3f}s deadline; worker killed"
                )
        try:
            return worker.conn.recv()
        except (EOFError, OSError) as error:
            self.kill_worker(shard_id)
            raise ShardUnavailableError(
                f"shard {shard_id} worker died mid-request "
                f"({self.tier} {op!r}): {error}"
            ) from None

    def _finish(self, shard_id: int, op: str):
        status, payload = self._recv(
            shard_id, op, deadline_seconds=self.timeout
        )
        if status == "ok":
            return payload
        raise _rebuild_error(shard_id, op, payload)

    def call(self, shard_id: int, op: str, *args):
        """One request/reply round trip with one shard worker."""
        self._send(shard_id, pickle.dumps((op, args), pickle.HIGHEST_PROTOCOL))
        return self._finish(shard_id, op)

    def fanout(self, op: str, *args) -> list:
        """Send to every worker, then collect — shards run concurrently.

        The request is pickled once and broadcast as bytes.  If any
        shard fails, the remaining replies are still drained (keeping
        every surviving pipe request/reply aligned) before the first
        failure is raised.
        """
        payload = pickle.dumps((op, args), pickle.HIGHEST_PROTOCOL)
        sent = []
        first_error: BaseException | None = None
        for shard_id in range(self.num_shards):
            try:
                self._send(shard_id, payload)
            except BaseException as error:
                first_error = first_error or error
            else:
                sent.append(shard_id)
        results = {}
        for shard_id in sent:
            try:
                results[shard_id] = self._finish(shard_id, op)
            except BaseException as error:
                first_error = first_error or error
        if first_error is not None:
            raise first_error
        return [results[shard_id] for shard_id in range(self.num_shards)]

    @contextlib.contextmanager
    def quiesce(self):
        """Yield pickled copies of every shard's index.

        Workers serve requests one at a time, so each copy is a
        consistent shard snapshot; the parent may encode/persist the
        copies without any locking.
        """
        yield self.fanout("get_state")
