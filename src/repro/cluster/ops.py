"""The shard RPC vocabulary: named operations over one shard's index.

Every shard interaction — search fan-out, churn, stats, persistence
snapshots, failure-injection probes — is expressed as an ``(op, args)``
pair dispatched through these per-tier handler tables.  Both backends
execute the *same* handler functions: :class:`~repro.cluster.backend.
InprocBackend` calls them directly under the shard mutex, and
:class:`~repro.cluster.backend.ProcessBackend` workers resolve them by
``(tier, op)`` name after the pair crosses the pipe.  Identical code on
identical state is what makes process results byte-identical to thread
results — equivalence by construction, not by careful reimplementation.

Handlers take ``(index, *args)`` where ``index`` is the shard's
:class:`~repro.search.inverted_index.InvertedIndex` (``"lexical"`` tier)
or :class:`~repro.search.vector.VectorIndex` (``"vector"`` tier).
Arguments and results must be picklable; all of ours are (frozen
dataclass trees and rankers, token tuples, numpy arrays, floats — and
pickled floats round-trip bit-exactly).

:data:`MUTATING_OPS` names the ops that change shard state; the replica
router broadcasts those to every healthy replica and routes everything
else to exactly one.
"""

from __future__ import annotations

import time
import zlib

#: ops that mutate shard state — the router broadcasts these to all
#: healthy replicas instead of routing them to one
MUTATING_OPS = frozenset({"add", "remove", "fit"})


# -- tier-agnostic ops --------------------------------------------------------
def ping(index) -> bool:
    """Liveness probe: proves the worker loop is serving requests."""
    return True


def shard_size(index) -> int:
    """Live document count of this shard."""
    return len(index)


def contains(index, doc_id: int) -> bool:
    """Whether ``doc_id`` is indexed in this shard."""
    return doc_id in index

def get_state(index):
    """The shard's index object itself (a pickled copy over a pipe).

    The quiesced-snapshot primitive behind ``save``: the parent collects
    every shard's state and runs the normal segment-store encode.  Over
    a process backend the reply is a private copy; in-process callers
    receive the live object and must hold the backend's quiesce context
    while touching it.
    """
    return index


def stall(index, seconds: float) -> float:
    """Block the shard for ``seconds`` (failure injection: a slow worker).

    Exists so timeout/failover paths can be exercised deterministically
    in tests; never called by the serving path.
    """
    time.sleep(seconds)
    return seconds


# -- lexical tier -------------------------------------------------------------
def lexical_add(index, doc_id: int, tokens: tuple) -> None:
    """Index one document in this shard."""
    index.add_document(doc_id, tokens)


def lexical_remove(index, doc_id: int) -> tuple:
    """Unindex one document; returns its token tuple.

    The tokens flow back so the facade can decrement the global
    document-frequency table without a second round trip.
    """
    tokens = index.document(doc_id)
    index.remove_document(doc_id)
    return tokens


def lexical_document(index, doc_id: int) -> tuple:
    """The indexed token tuple of ``doc_id`` (KeyError if absent)."""
    return index.document(doc_id)


def lexical_doc_ids(index) -> list:
    """Sorted live doc ids of this shard."""
    return index.document_ids()


def lexical_stats_raw(index) -> tuple:
    """``(num_docs, total_length, dfs)`` exact integer shard statistics.

    Summed across shards by the facade to rebuild global corpus
    statistics after a cold start — the same integers an unsharded
    index would hold, so BM25 stays bit-identical.
    """
    return (
        len(index),
        index.total_doc_length,
        {token: len(postings) for token, postings in index._postings.items()},
    )


def lexical_search(index, trees, query_tokens, ranker, k: int) -> tuple:
    """One shard's share of a fan-out search.

    Evaluates every syntax tree against the local postings, unions the
    branch candidates, and ranks the local top-``k`` with the pinned
    ranker (global statistics travel inside it).  Returns ``(top, cost,
    num_candidates)`` exactly as the thread fan-out always has.
    """
    # Imported here, like the digest codecs: repro.search itself imports
    # this package, so a module-level import would be circular.
    from repro.search.postings import union_sorted

    branches = []
    cost = 0
    for tree in trees:
        docs, tree_cost = tree.evaluate_postings(index)
        branches.append(docs)
        cost += tree_cost
    candidates = union_sorted(branches)
    top = ranker.rank_scored(index, query_tokens, candidates, k)
    return top, cost, int(candidates.size)


def lexical_digest(index) -> int:
    """CRC32 of the shard's full-segment encoding.

    The respawn fingerprint: the segment codec is deterministic, so two
    shards digest equal iff their persisted form is byte-identical.
    """
    from repro.store import segments as codecs

    return zlib.crc32(codecs.encode_postings_segment(index))


# -- vector tier --------------------------------------------------------------
def vector_add(index, doc_id: int, vector) -> None:
    """Insert one vector into this shard."""
    index.add_document(doc_id, vector)


def vector_remove(index, doc_id: int) -> None:
    """Delete one vector from this shard (KeyError if absent)."""
    index.remove_document(doc_id)


def vector_fit(index, doc_ids, vectors) -> None:
    """Bulk-load and (re)train this shard's IVF cells."""
    index.fit(doc_ids, vectors)


def vector_document(index, doc_id: int):
    """The stored vector for ``doc_id`` (a copy)."""
    return index.document(doc_id)


def vector_doc_ids(index) -> list:
    """Sorted live doc ids of this shard."""
    return sorted(index._cell_of)


def vector_meta(index) -> dict:
    """Shard geometry: dim / clusters / nprobe / seed.

    Lets a facade reconstruct itself over a cold-started backend without
    decoding any segment in the parent.
    """
    return {
        "dim": index.dim,
        "num_clusters": index.num_clusters,
        "nprobe": index.nprobe,
        "seed": index.seed,
    }


def vector_search(index, query, k: int, nprobe) -> list:
    """One shard's ANN probe: local ``(score, doc_id)`` top-k."""
    return index.search(query, k, nprobe=nprobe)


def vector_digest(index) -> int:
    """CRC32 of the shard's full-segment encoding (see lexical twin)."""
    from repro.store import segments as codecs

    return zlib.crc32(codecs.encode_vectors_segment(index))


#: handler tables: ``OPS[tier][op](index, *args)``
OPS: dict[str, dict] = {
    "lexical": {
        "ping": ping,
        "shard_size": shard_size,
        "contains": contains,
        "get_state": get_state,
        "stall": stall,
        "add": lexical_add,
        "remove": lexical_remove,
        "doc": lexical_document,
        "doc_ids": lexical_doc_ids,
        "stats_raw": lexical_stats_raw,
        "search": lexical_search,
        "digest": lexical_digest,
    },
    "vector": {
        "ping": ping,
        "shard_size": shard_size,
        "contains": contains,
        "get_state": get_state,
        "stall": stall,
        "add": vector_add,
        "remove": vector_remove,
        "fit": vector_fit,
        "doc": vector_document,
        "doc_ids": vector_doc_ids,
        "meta": vector_meta,
        "search": vector_search,
        "digest": vector_digest,
    },
}
