"""N-way replica routing with health checks and transparent failover.

A :class:`ReplicaRouter` fronts N :class:`~repro.cluster.backend.
ShardBackend` replicas that serve identical data (each loaded from the
same segment-store generation, or kept in lockstep by broadcast
writes).  It exposes the same ``call``/``fanout``/``quiesce``/``close``
surface as a single backend, so the sharded facades cannot tell one
replica from many:

* **Reads** (search, stats, digests) route to one healthy replica,
  rotating round-robin.  A liveness failure
  (:class:`~repro.cluster.errors.ShardUnavailableError`, which includes
  timeouts) marks that replica unhealthy and retries the next one —
  transparent failover, identical results, because every replica holds
  the same state.
* **Writes** (:data:`~repro.cluster.ops.MUTATING_OPS`) broadcast to
  every healthy replica so survivors stay identical; a replica that
  dies mid-broadcast is marked unhealthy and skipped.
* **Application errors** propagate unchanged: every replica would fail
  the same way, so rerouting them would only repeat the failure.

``kill_replica`` injects a failure without telling the router — the
next request that touches the dead replica discovers it organically,
which is exactly what the ``shard_failover`` scenario arm measures.
``respawn_replica`` re-attaches a replacement backend (typically booted
from a shipped snapshot, see ``SegmentStore.ship_snapshot``) and marks
it healthy again.
"""

from __future__ import annotations

import contextlib
import threading

from repro.cluster.backend import ShardBackend
from repro.cluster.errors import NoHealthyReplicaError, ShardUnavailableError
from repro.cluster.ops import MUTATING_OPS


class ReplicaRouter:
    """Route shard ops across N state-identical backend replicas."""

    def __init__(self, replicas: list):
        """``replicas`` must agree on tier and shard count."""
        if not replicas:
            raise ValueError("router needs at least one replica")
        tiers = {replica.tier for replica in replicas}
        counts = {replica.num_shards for replica in replicas}
        if len(tiers) != 1 or len(counts) != 1:
            raise ValueError(
                f"replicas disagree on tier/shards: {sorted(tiers)} / {sorted(counts)}"
            )
        self.replicas: list[ShardBackend] = list(replicas)
        self.tier = replicas[0].tier
        self.num_shards = replicas[0].num_shards
        self._healthy = [True] * len(self.replicas)
        self._cursor = 0
        self._lock = threading.Lock()
        self._counters = {
            "failovers": 0,
            "rerouted_requests": 0,
            "writes_skipped": 0,
            "respawns": 0,
        }

    # -- health --------------------------------------------------------------
    @property
    def healthy_replicas(self) -> int:
        """How many replicas are currently marked healthy."""
        return sum(self._healthy)

    def _mark_unhealthy(self, at: int) -> None:
        with self._lock:
            if self._healthy[at]:
                self._healthy[at] = False
                self._counters["failovers"] += 1

    def kill_replica(self, at: int) -> None:
        """Failure injection: kill replica ``at`` WITHOUT marking it.

        The router keeps routing to it until a real request fails —
        failover must be discovered organically, as in production.
        """
        self.replicas[at].kill()

    def respawn_replica(self, at: int, backend: ShardBackend) -> None:
        """Attach a replacement backend for replica ``at``, healthy again."""
        if backend.tier != self.tier or backend.num_shards != self.num_shards:
            raise ValueError("replacement replica disagrees on tier/shards")
        old = self.replicas[at]
        self.replicas[at] = backend
        with self._lock:
            self._healthy[at] = True
            self._counters["respawns"] += 1
        with contextlib.suppress(Exception):
            old.close()

    # -- routing -------------------------------------------------------------
    def _rotation(self) -> list[int]:
        """Healthy replica order for one read, advancing the round-robin."""
        with self._lock:
            order = [
                at
                for offset in range(len(self.replicas))
                for at in [(self._cursor + offset) % len(self.replicas)]
                if self._healthy[at]
            ]
            self._cursor = (self._cursor + 1) % len(self.replicas)
            if any(not healthy for healthy in self._healthy):
                self._counters["rerouted_requests"] += 1
        if not order:
            raise NoHealthyReplicaError(
                f"all {len(self.replicas)} {self.tier} replicas are unhealthy"
            )
        return order

    def _routed(self, run):
        """Run a read on one healthy replica, failing over on liveness."""
        last: ShardUnavailableError | None = None
        for at in self._rotation():
            try:
                return run(self.replicas[at])
            except ShardUnavailableError as error:
                self._mark_unhealthy(at)
                last = error
        raise NoHealthyReplicaError(
            f"all {len(self.replicas)} {self.tier} replicas failed"
        ) from last

    def _broadcast(self, run):
        """Apply a write to every healthy replica; survivors stay identical.

        Liveness failures mark the replica unhealthy and skip it
        (counted, so operators can see how much state a respawn must
        restore); application errors propagate immediately — replicas
        validate before mutating, so none has applied the write.
        """
        result = None
        applied = False
        for at, replica in enumerate(self.replicas):
            if not self._healthy[at]:
                with self._lock:
                    self._counters["writes_skipped"] += 1
                continue
            try:
                outcome = run(replica)
            except ShardUnavailableError:
                self._mark_unhealthy(at)
                with self._lock:
                    self._counters["writes_skipped"] += 1
                continue
            if not applied:
                result = outcome
                applied = True
        if not applied:
            raise NoHealthyReplicaError(
                f"no healthy {self.tier} replica accepted the write"
            )
        return result

    # -- the backend surface -------------------------------------------------
    def call(self, shard_id: int, op: str, *args):
        """Route one op: broadcast writes, round-robin reads."""
        if op in MUTATING_OPS:
            return self._broadcast(lambda r: r.call(shard_id, op, *args))
        return self._routed(lambda r: r.call(shard_id, op, *args))

    def fanout(self, op: str, *args) -> list:
        """Route a whole-tier op (same write/read split as :meth:`call`)."""
        if op in MUTATING_OPS:
            return self._broadcast(lambda r: r.fanout(op, *args))
        return self._routed(lambda r: r.fanout(op, *args))

    @contextlib.contextmanager
    def quiesce(self):
        """Quiesce one healthy replica (with failover) for persistence."""
        last: ShardUnavailableError | None = None
        for at in self._rotation():
            try:
                manager = self.replicas[at].quiesce()
                indexes = manager.__enter__()
            except ShardUnavailableError as error:
                # Only *entering* the snapshot fails over; an error raised
                # by the caller's own body must propagate untouched.
                self._mark_unhealthy(at)
                last = error
                continue
            try:
                yield indexes
            except BaseException as error:
                if not manager.__exit__(type(error), error, error.__traceback__):
                    raise
            else:
                manager.__exit__(None, None, None)
            return
        raise NoHealthyReplicaError(
            f"all {len(self.replicas)} {self.tier} replicas failed"
        ) from last

    def kill(self) -> None:
        """Failure injection for the whole group (router stays answerable)."""
        for replica in self.replicas:
            replica.kill()

    def close(self) -> None:
        """Close every replica, dead ones included (idempotent)."""
        for replica in self.replicas:
            with contextlib.suppress(Exception):
                replica.close()

    def __enter__(self) -> "ReplicaRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reporting -----------------------------------------------------------
    def stats(self) -> dict:
        """Raw failover counters plus the health picture."""
        with self._lock:
            counters = dict(self._counters)
        counters["replicas"] = len(self.replicas)
        counters["healthy_replicas"] = self.healthy_replicas
        return counters

    def describe(self) -> dict:
        """The :meth:`ShardBackend.describe` shape, with real counters."""
        info = self.stats()
        names = sorted({replica.name for replica in self.replicas})
        info["backend"] = f"{'+'.join(names)}x{len(self.replicas)}"
        info["num_shards"] = self.num_shards
        return info
