"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build an editable wheel.  This shim
lets ``python setup.py develop`` (and pip's legacy editable path) work; all
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
