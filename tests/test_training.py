"""Training loops: separate MLE, Algorithm 1, history and metrics."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data.dataset import ParallelCorpus
from repro.models import ModelConfig, TransformerNMT
from repro.training import (
    CyclicConfig,
    CyclicTrainer,
    History,
    SeparateTrainer,
    TrainingConfig,
    batched_top_n_sampling,
    sequence_log_prob_tensor,
    teacher_forced_metrics,
    translate_back_metrics,
)

TINY = ModelConfig(
    vocab_size=64, d_model=16, num_heads=2, d_ff=32,
    encoder_layers=1, decoder_layers=1, dropout=0.0, seed=0,
)


class TestHistory:
    def test_record_and_series(self):
        history = History()
        history.record(1, loss=2.0)
        history.record(2, loss=1.0, accuracy=0.5)
        steps, values = history.series("loss")
        assert steps == [1, 2]
        assert values == [2.0, 1.0]

    def test_last(self):
        history = History()
        history.record(1, loss=3.0)
        assert history.last("loss") == 3.0

    def test_last_missing_raises(self):
        with pytest.raises(KeyError):
            History().last("nope")

    def test_contains_and_names(self):
        history = History()
        history.record(1, a=1.0, b=2.0)
        assert "a" in history
        assert history.names() == ["a", "b"]

    def test_merge_with_prefix(self):
        a, b = History(), History()
        b.record(5, loss=1.0)
        a.merge(b, prefix="x_")
        assert a.series("x_loss") == ([5], [1.0])


class TestSequenceLogProbTensor:
    def test_matches_nondifferentiable_version(self, tiny_market):
        model = TransformerNMT(TINY.scaled(vocab_size=len(tiny_market.vocab)))
        corpus = tiny_market.forward_corpus
        src = np.array([corpus.sources[0]])
        tgt = np.array([corpus.targets[0]])
        differentiable = sequence_log_prob_tensor(model, src, tgt)
        reference = model.sequence_log_prob(src, tgt)
        np.testing.assert_allclose(differentiable.data, reference, atol=1e-9)

    def test_gradients_flow_to_model(self, tiny_market):
        model = TransformerNMT(TINY.scaled(vocab_size=len(tiny_market.vocab)))
        corpus = tiny_market.forward_corpus
        src = np.array([corpus.sources[0]])
        tgt = np.array([corpus.targets[0]])
        model.zero_grad()
        (-sequence_log_prob_tensor(model, src, tgt).sum()).backward()
        grads = [p.grad for _, p in model.named_parameters() if p.grad is not None]
        assert grads


class TestBatchedTopNSampling:
    def test_shapes_and_specials(self, trained_pair, tiny_market):
        forward, _, _ = trained_pair
        vocab = tiny_market.vocab
        corpus = tiny_market.forward_corpus
        from repro.data.dataset import pad_batch

        src = pad_batch(corpus.sources[:4], vocab.pad_id)
        titles = batched_top_n_sampling(
            forward, src, k=3, n=5, max_len=10, rng=np.random.default_rng(0)
        )
        assert len(titles) == 4
        for per_query in titles:
            assert len(per_query) == 3
            for seq in per_query:
                assert seq, "empty synthetic title"
                assert vocab.pad_id not in seq
                assert vocab.sos_id not in seq
                assert vocab.eos_id not in seq

    def test_first_tokens_unique_per_query(self, trained_pair, tiny_market):
        forward, _, _ = trained_pair
        from repro.data.dataset import pad_batch

        src = pad_batch(tiny_market.forward_corpus.sources[:4], tiny_market.vocab.pad_id)
        titles = batched_top_n_sampling(
            forward, src, k=3, n=5, max_len=10, rng=np.random.default_rng(0)
        )
        for per_query in titles:
            firsts = [seq[0] for seq in per_query]
            assert len(set(firsts)) == len(firsts)


class TestSeparateTrainer:
    def test_loss_decreases(self, tiny_market):
        model = TransformerNMT(TINY.scaled(vocab_size=len(tiny_market.vocab)))
        trainer = SeparateTrainer(
            model, tiny_market.forward_corpus, TrainingConfig(max_steps=60, seed=0)
        )
        history = trainer.train(60)
        steps, losses = history.series("loss")
        assert losses[-1] < losses[0] * 0.8

    def test_history_records_perplexity(self, tiny_market):
        model = TransformerNMT(TINY.scaled(vocab_size=len(tiny_market.vocab)))
        trainer = SeparateTrainer(
            model, tiny_market.forward_corpus,
            TrainingConfig(max_steps=10, log_every=5, seed=0),
        )
        history = trainer.train(10)
        _, perplexities = history.series("perplexity")
        _, losses = history.series("loss")
        np.testing.assert_allclose(perplexities, np.exp(np.minimum(losses, 30.0)))


class TestCyclicTrainer:
    def test_warmup_has_no_cyclic_loss(self, tiny_market):
        forward = TransformerNMT(TINY.scaled(vocab_size=len(tiny_market.vocab)))
        backward = TransformerNMT(TINY.scaled(vocab_size=len(tiny_market.vocab), seed=1))
        trainer = CyclicTrainer(
            forward, backward, tiny_market.train_pairs, tiny_market.vocab,
            CyclicConfig(batch_size=8, warmup_steps=5, beam_width=2, top_n=4,
                         max_title_len=8, seed=0),
        )
        metrics = trainer.train_step()
        assert "loss_cyclic" not in metrics
        assert trainer.in_warmup

    def test_cyclic_loss_appears_after_warmup(self, tiny_market):
        forward = TransformerNMT(TINY.scaled(vocab_size=len(tiny_market.vocab)))
        backward = TransformerNMT(TINY.scaled(vocab_size=len(tiny_market.vocab), seed=1))
        trainer = CyclicTrainer(
            forward, backward, tiny_market.train_pairs, tiny_market.vocab,
            CyclicConfig(batch_size=4, warmup_steps=2, beam_width=2, top_n=4,
                         max_title_len=8, seed=0),
        )
        trainer.train_step()
        trainer.train_step()
        metrics = trainer.train_step()  # step 3 > warmup 2
        assert "loss_cyclic" in metrics
        assert np.isfinite(metrics["loss_cyclic"])

    def test_cyclic_loss_matches_manual_formula(self, trained_pair, tiny_market):
        """The cyclic loss must equal
        -mean log Σ_i P(y_i|x) P(x|y_i) over the sampled titles."""
        forward, backward, trainer = trained_pair
        vocab = tiny_market.vocab
        from repro.data.dataset import pad_batch

        idx = [0, 1]
        q_src = pad_batch([trainer._q_src[i] for i in idx], vocab.pad_id)
        q_tgt = pad_batch([trainer._q_tgt[i] for i in idx], vocab.pad_id)

        # Reproduce the sampling with the same rng state.
        state = np.random.default_rng(123)
        trainer._rng = np.random.default_rng(123)
        loss = trainer._cyclic_loss(q_src, q_tgt)

        trainer2_rng = np.random.default_rng(123)
        forward.eval()
        titles = batched_top_n_sampling(
            forward, q_src, k=trainer.config.beam_width, n=trainer.config.top_n,
            max_len=trainer.config.max_title_len, rng=trainer2_rng,
        )
        forward.train()
        k = trainer.config.beam_width
        total = 0.0
        for row, per_query in enumerate(titles):
            terms = []
            for seq in per_query:
                y_src = np.array([seq + [vocab.eos_id]])
                y_tgt = np.array([[vocab.sos_id] + seq + [vocab.eos_id]])
                x_src = np.array([trainer._q_src[idx[row]]])
                x_tgt = np.array([trainer._q_tgt[idx[row]]])
                lp_f = float(forward.sequence_log_prob(x_src, y_tgt)[0])
                lp_b = float(backward.sequence_log_prob(y_src, x_tgt)[0])
                terms.append(lp_f + lp_b)
            peak = max(terms)
            total += peak + np.log(np.sum(np.exp(np.array(terms) - peak)))
        expected = -total / len(idx)
        np.testing.assert_allclose(float(loss.item()), expected, atol=1e-6)

    def test_both_models_update_after_warmup(self, tiny_market):
        forward = TransformerNMT(TINY.scaled(vocab_size=len(tiny_market.vocab)))
        backward = TransformerNMT(TINY.scaled(vocab_size=len(tiny_market.vocab), seed=1))
        trainer = CyclicTrainer(
            forward, backward, tiny_market.train_pairs, tiny_market.vocab,
            CyclicConfig(batch_size=4, warmup_steps=0, beam_width=2, top_n=4,
                         max_title_len=8, seed=0),
        )
        before_f = forward.embedding.weight.data.copy()
        before_b = backward.embedding.weight.data.copy()
        trainer.train_step()
        assert not np.allclose(before_f, forward.embedding.weight.data)
        assert not np.allclose(before_b, backward.embedding.weight.data)

    def test_empty_pairs_rejected(self, tiny_market):
        forward = TransformerNMT(TINY.scaled(vocab_size=len(tiny_market.vocab)))
        backward = TransformerNMT(TINY.scaled(vocab_size=len(tiny_market.vocab), seed=1))
        with pytest.raises(ValueError):
            CyclicTrainer(forward, backward, [], tiny_market.vocab)


class TestEvaluationMetrics:
    def test_teacher_forced_metrics_ranges(self, trained_pair, tiny_market):
        forward, _, _ = trained_pair
        metrics = teacher_forced_metrics(forward, tiny_market.forward_corpus, max_batches=2)
        assert metrics["perplexity"] > 1.0
        assert 0.0 <= metrics["accuracy"] <= 1.0
        assert metrics["log_prob"] < 0.0

    def test_trained_model_beats_fresh_model(self, trained_pair, tiny_market):
        forward, _, _ = trained_pair
        fresh = TransformerNMT(TINY.scaled(vocab_size=len(tiny_market.vocab), seed=9))
        trained_metrics = teacher_forced_metrics(forward, tiny_market.forward_corpus, max_batches=2)
        fresh_metrics = teacher_forced_metrics(fresh, tiny_market.forward_corpus, max_batches=2)
        assert trained_metrics["perplexity"] < fresh_metrics["perplexity"]
        assert trained_metrics["accuracy"] > fresh_metrics["accuracy"]

    def test_translate_back_metrics_ranges(self, trained_pair, tiny_market):
        forward, backward, _ = trained_pair
        queries = [
            tiny_market.vocab.encode(list(q), add_eos=True)
            for q, _, _ in tiny_market.eval_pairs[:6]
        ]
        metrics = translate_back_metrics(
            forward, backward, queries, tiny_market.vocab,
            k=2, top_n=4, rng=np.random.default_rng(0),
        )
        assert metrics["log_prob"] < 0.0
        assert 0.0 <= metrics["accuracy"] <= 1.0
        assert metrics["perplexity"] >= 1.0

    def test_translate_back_needs_queries(self, trained_pair, tiny_market):
        forward, backward, _ = trained_pair
        with pytest.raises(ValueError):
            translate_back_metrics(forward, backward, [], tiny_market.vocab)
