"""Click-log simulation: filtering, statistics, zipf traffic."""

import numpy as np
import pytest

from repro.data.catalog import CatalogConfig, CatalogGenerator
from repro.data.clicklog import ClickLogConfig, ClickLogSimulator
from repro.data.queries import QueryGenerator


@pytest.fixture(scope="module")
def catalog():
    return CatalogGenerator(CatalogConfig(products_per_category=6, seed=0)).generate()


@pytest.fixture(scope="module")
def click_log(catalog):
    simulator = ClickLogSimulator(
        catalog,
        QueryGenerator(),
        ClickLogConfig(num_sessions=800, intent_pool_size=80, seed=0),
    )
    return simulator.simulate()


class TestSimulation:
    def test_pairs_meet_click_threshold(self, click_log):
        for _, _, clicks in click_log.pairs:
            assert clicks >= 2

    def test_pairs_reference_real_titles(self, click_log, catalog):
        titles = {p.title_tokens for p in catalog.products}
        for _, title, _ in click_log.pairs:
            assert title in titles

    def test_events_reference_recorded_queries(self, click_log):
        for event in click_log.events[:200]:
            text = " ".join(event.query_tokens)
            assert text in click_log.queries

    def test_clicks_prefer_relevant_products(self, click_log, catalog):
        """Clicked products should match the query's intent category almost
        always (noise clicks are rare)."""
        matched = 0
        total = 0
        for event in click_log.events:
            total += 1
            product = catalog.get(event.product_id)
            if product.category == event.intent.category:
                matched += 1
        assert matched / total > 0.9

    def test_zipf_head_accumulates_clicks(self, click_log):
        counts = sorted(
            (r.total_clicks for r in click_log.queries.values()), reverse=True
        )
        top_share = sum(counts[: max(1, len(counts) // 10)]) / max(1, sum(counts))
        assert top_share > 0.25  # head 10% of queries carries >25% of clicks

    def test_deterministic_given_seed(self, catalog):
        config = ClickLogConfig(num_sessions=200, intent_pool_size=50, seed=9)
        a = ClickLogSimulator(catalog, QueryGenerator(), config).simulate()
        b = ClickLogSimulator(catalog, QueryGenerator(), config).simulate()
        assert a.pairs == b.pairs


class TestStatistics:
    def test_statistics_keys(self, click_log):
        stats = click_log.statistics()
        assert set(stats) == {
            "num_query_item_pairs",
            "num_search_sessions",
            "vocab_size",
            "avg_query_words",
            "avg_title_words",
        }

    def test_titles_longer_than_queries(self, click_log):
        stats = click_log.statistics()
        assert stats["avg_title_words"] > 2 * stats["avg_query_words"]

    def test_session_count_recorded(self, click_log):
        assert click_log.statistics()["num_search_sessions"] == 800

    def test_query_product_clicks_view(self, click_log):
        clicks = click_log.query_product_clicks()
        assert clicks
        for (text, product_id), count in list(clicks.items())[:20]:
            assert click_log.queries[text].clicked_products[product_id] == count


class TestMinClickFilter:
    def test_min_clicks_one_keeps_more_pairs(self, catalog):
        strict = ClickLogSimulator(
            catalog, QueryGenerator(),
            ClickLogConfig(num_sessions=400, intent_pool_size=60, min_pair_clicks=2, seed=1),
        ).simulate()
        loose = ClickLogSimulator(
            catalog, QueryGenerator(),
            ClickLogConfig(num_sessions=400, intent_pool_size=60, min_pair_clicks=1, seed=1),
        ).simulate()
        assert len(loose.pairs) > len(strict.pairs)
