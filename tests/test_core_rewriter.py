"""CyclicRewriter (Fig 3 pipeline) and DirectRewriter."""

import numpy as np
import pytest

from repro.core import CyclicRewriter, DirectRewriter, RewriterConfig
from repro.decoding.logspace import logsumexp_np


@pytest.fixture(scope="module")
def rewriter(trained_pair, tiny_market):
    forward, backward, _ = trained_pair
    return CyclicRewriter(
        forward, backward, tiny_market.vocab,
        RewriterConfig(k=3, top_n=5, max_title_len=10, max_query_len=8, seed=0),
    )


class TestCyclicRewriter:
    def test_returns_results_with_provenance(self, rewriter, tiny_market):
        query = " ".join(tiny_market.train_pairs[0][0])
        results = rewriter.rewrite(query)
        assert results, f"no rewrites for {query!r}"
        for result in results:
            assert result.tokens
            assert result.text == " ".join(result.tokens)
            assert np.isfinite(result.log_prob)
            assert result.via_title  # provenance recorded

    def test_never_returns_original_query(self, rewriter, tiny_market):
        for q, _, _ in tiny_market.train_pairs[:8]:
            query = " ".join(q)
            for result in rewriter.rewrite(query):
                assert result.text != query

    def test_results_sorted_by_score(self, rewriter, tiny_market):
        query = " ".join(tiny_market.train_pairs[1][0])
        results = rewriter.rewrite(query)
        scores = [r.log_prob for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits_results(self, rewriter, tiny_market):
        query = " ".join(tiny_market.train_pairs[2][0])
        assert len(rewriter.rewrite(query, k=1)) <= 1
        assert len(rewriter.rewrite(query, k=2)) <= 2

    def test_empty_query_returns_empty(self, rewriter):
        assert rewriter.rewrite("") == []
        assert rewriter.rewrite([]) == []

    def test_accepts_token_list(self, rewriter, tiny_market):
        tokens = list(tiny_market.train_pairs[0][0])
        results = rewriter.rewrite(tokens)
        assert isinstance(results, list)

    def test_scores_are_marginals_over_titles(self, rewriter, trained_pair, tiny_market):
        """The reported score must equal log Σ_t P(y_t|x) P(x'|y_t)
        recomputed by hand from the models."""
        forward, backward, _ = trained_pair
        vocab = tiny_market.vocab
        query_tokens = list(tiny_market.train_pairs[0][0])
        # Freeze randomness so we can re-run the same titles.
        fresh = CyclicRewriter(
            forward, backward, vocab,
            RewriterConfig(k=2, top_n=5, max_title_len=8, max_query_len=6, seed=99),
        )
        results = fresh.rewrite(query_tokens)
        if not results:
            pytest.skip("sampling produced no candidates for this query")
        result = results[0]

        # Recompute with the same title set is impossible without the internal
        # rng; instead verify the bound: marginal >= any single-path score.
        src = np.array([vocab.encode(query_tokens, add_eos=True)])
        title_ids = vocab.encode(list(result.via_title), add_eos=False)
        y_tgt = np.array([[vocab.sos_id] + title_ids + [vocab.eos_id]])
        y_src = np.array([title_ids + [vocab.eos_id]])
        x_ids = vocab.encode(list(result.tokens), add_eos=False)
        x_tgt = np.array([[vocab.sos_id] + x_ids + [vocab.eos_id]])
        single_path = float(
            forward.sequence_log_prob(src, y_tgt)[0]
            + backward.sequence_log_prob(y_src, x_tgt)[0]
        )
        assert result.log_prob >= single_path - 1e-6


class TestDirectRewriter:
    @pytest.fixture(scope="class")
    def direct(self, trained_pair, tiny_market):
        # Reuse the forward model as a stand-in q2q model: the interface
        # under test is identical.
        forward, _, _ = trained_pair
        return DirectRewriter(
            forward, tiny_market.vocab,
            RewriterConfig(k=3, top_n=5, max_query_len=8, seed=0),
        )

    def test_returns_at_most_k(self, direct, tiny_market):
        query = " ".join(tiny_market.train_pairs[0][0])
        assert len(direct.rewrite(query, k=2)) <= 2

    def test_excludes_original(self, direct, tiny_market):
        for q, _, _ in tiny_market.train_pairs[:5]:
            query = " ".join(q)
            for result in direct.rewrite(query):
                assert result.text != query

    def test_empty_query(self, direct):
        assert direct.rewrite("") == []
