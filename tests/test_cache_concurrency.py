"""Threaded stress for ``RewriteCache``: the accounting must stay exact.

Hammers one bounded sharded cache with concurrent get/put/delete from
many threads and then checks the invariants the serving tier relies on:

* every ``get`` is counted as exactly one hit or one miss;
* every entry ever stored is accounted for by exactly one of: still
  live, evicted (capacity), expired (TTL), or deleted;
* occupancy never exceeds capacity, per-shard gauges sum to the totals.

The switch interval is cranked down so the interpreter forces thread
switches inside the cache's read-modify-write sequences — without the
per-shard/stats locking these invariants fail (lost counter updates, or
``RuntimeError`` from an ``OrderedDict`` mutated mid-scan).
"""

from __future__ import annotations

import random
import sys
import threading
import time

import pytest

from repro.core import RewriteCache

NUM_THREADS = 8
OPS_PER_THREAD = 1_500


@pytest.fixture()
def aggressive_switching():
    """Force very frequent GIL switches for the duration of one test."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


class Worker(threading.Thread):
    """One stress thread: puts its own unique keys, gets/deletes anyone's."""

    def __init__(self, cache: RewriteCache, thread_id: int, barrier: threading.Barrier):
        super().__init__(name=f"cache-stress-{thread_id}")
        self.cache = cache
        self.thread_id = thread_id
        self.barrier = barrier
        self.rng = random.Random(1000 + thread_id)
        self.puts = 0
        self.gets = 0
        self.deletes_ok = 0
        self.error: BaseException | None = None

    @staticmethod
    def key(thread_id: int, i: int) -> str:
        return f"thread{thread_id} key{i}"

    def run(self):
        try:
            self.barrier.wait()
            next_key = 0
            for _ in range(OPS_PER_THREAD):
                op = self.rng.random()
                # Any thread's key space is fair game for reads/deletes.
                other = self.rng.randrange(NUM_THREADS)
                other_key = self.key(other, self.rng.randrange(OPS_PER_THREAD))
                if op < 0.5:
                    self.cache.put(
                        self.key(self.thread_id, next_key), ["rewrite a", "rewrite b"]
                    )
                    next_key += 1
                    self.puts += 1
                elif op < 0.85:
                    self.cache.get(other_key)
                    self.gets += 1
                else:
                    if self.cache.delete(other_key):
                        self.deletes_ok += 1
        except BaseException as exc:  # pragma: no cover - only on regression
            self.error = exc


def stress(cache: RewriteCache) -> list[Worker]:
    barrier = threading.Barrier(NUM_THREADS)
    workers = [Worker(cache, i, barrier) for i in range(NUM_THREADS)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    errors = [w.error for w in workers if w.error is not None]
    assert not errors, f"worker raised under concurrency: {errors[0]!r}"
    return workers


def check_conservation(cache: RewriteCache, workers: list[Worker]) -> None:
    """Every stored entry is live, evicted, expired, or deleted — once."""
    total_puts = sum(w.puts for w in workers)
    total_gets = sum(w.gets for w in workers)
    total_deletes = sum(w.deletes_ok for w in workers)
    stats = cache.stats

    assert stats.hits + stats.misses == total_gets
    assert (
        len(cache) + stats.evictions + stats.expirations + total_deletes
        == total_puts
    )
    assert sum(cache.shard_occupancy()) == len(cache)
    assert sum(cache.shard_evictions()) == stats.evictions
    if cache.capacity is not None:
        assert len(cache) <= cache.capacity
        for shard_len in cache.shard_occupancy():
            assert shard_len <= cache.capacity


def test_bounded_cache_gauges_consistent_under_threads(aggressive_switching):
    cache = RewriteCache(capacity=64, shards=4)
    workers = stress(cache)
    check_conservation(cache, workers)
    assert cache.stats.expirations == 0  # no TTL configured
    assert cache.stats.evictions > 0  # capacity pressure actually happened


def test_ttl_cache_gauges_consistent_under_threads(aggressive_switching):
    # A tiny real-time TTL: entries expire mid-run, so all four removal
    # paths (evict, expire-on-get, expire-on-put-scan, delete) race.
    cache = RewriteCache(
        capacity=64, shards=4, ttl_seconds=0.002, clock=time.monotonic
    )
    workers = stress(cache)
    check_conservation(cache, workers)
    # The sweep collects whatever is still sitting expired in the shards,
    # and conservation still holds afterwards.
    cache.purge_expired()
    check_conservation(cache, workers)


def test_unbounded_cache_counts_every_get_under_threads(aggressive_switching):
    cache = RewriteCache(shards=2)
    workers = stress(cache)
    check_conservation(cache, workers)
    assert cache.stats.evictions == 0
    assert cache.stats.expirations == 0
