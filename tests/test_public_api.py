"""Public API surface: every package imports and every __all__ resolves."""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.autograd",
    "repro.nn",
    "repro.optim",
    "repro.text",
    "repro.data",
    "repro.data.marketplace",
    "repro.models",
    "repro.decoding",
    "repro.training",
    "repro.core",
    "repro.baselines",
    "repro.search",
    "repro.embedding",
    "repro.evaluation",
    "repro.experiments",
    "repro.online",
    "repro.store",
    "repro.cluster",
    "repro.gateway",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


def test_every_module_importable():
    """Walk the whole package tree — no module may fail at import time."""
    failures = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        try:
            importlib.import_module(info.name)
        except Exception as error:  # pragma: no cover - report which module
            failures.append((info.name, repr(error)))
    assert not failures, failures


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_readme_quickstart_symbols_exist():
    """The README's quickstart snippet must reference real names."""
    from repro.core import CyclicRewriter, RewriterConfig  # noqa: F401
    from repro.data import MarketplaceConfig, generate_marketplace  # noqa: F401
    from repro.models import ModelConfig, TransformerNMT  # noqa: F401
    from repro.training import CyclicConfig, CyclicTrainer  # noqa: F401


def test_scenario_library_surface():
    """The scenario library is part of repro.online's public contract."""
    from repro import online

    for symbol in (
        "Scenario",
        "ScenarioConfig",
        "ScenarioRunner",
        "ScenarioOutcome",
        "InvariantResult",
        "SCENARIOS",
        "get_scenario",
        "run_scenario",
    ):
        assert symbol in online.__all__, symbol
        assert hasattr(online, symbol), symbol


def test_cluster_surface():
    """The shard-backend tier is part of repro.cluster's public contract."""
    from repro import cluster

    for symbol in (
        "ShardBackend",
        "InprocBackend",
        "ProcessBackend",
        "ReplicaRouter",
        "LazyExecutor",
        "clamp_workers",
        "OPS",
        "MUTATING_OPS",
        "ClusterError",
        "ShardUnavailableError",
        "ShardTimeoutError",
        "ShardWorkerError",
        "NoHealthyReplicaError",
    ):
        assert symbol in cluster.__all__, symbol
        assert hasattr(cluster, symbol), symbol

    # The typed failure taxonomy the failover contract promises: only
    # the unavailable family (timeouts included) triggers rerouting.
    assert issubclass(cluster.ShardUnavailableError, cluster.ClusterError)
    assert issubclass(cluster.ShardTimeoutError, cluster.ShardUnavailableError)
    assert issubclass(cluster.ShardWorkerError, cluster.ClusterError)
    assert not issubclass(cluster.ShardWorkerError, cluster.ShardUnavailableError)
    assert issubclass(cluster.NoHealthyReplicaError, cluster.ClusterError)

    # Both deployment backends satisfy the backend contract.
    for cls in (cluster.InprocBackend, cluster.ProcessBackend):
        assert issubclass(cls, cluster.ShardBackend)
        for verb in ("call", "fanout", "quiesce", "close", "kill", "describe"):
            assert callable(getattr(cls, verb)), (cls.__name__, verb)


def test_gateway_surface():
    """The HTTP front door is part of repro.gateway's public contract."""
    from repro import gateway

    for symbol in (
        "Gateway",
        "GatewayConfig",
        "GatewayStats",
        "SchedulerBridge",
        "RequestShed",
        "RateLimiter",
        "RateLimitConfig",
        "TokenBucket",
        "SchemaError",
        "ErrorEnvelope",
        "RewriteRequest",
        "SearchRequest",
        "BatchRequest",
        "RewriteResponse",
        "SearchResponse",
        "BatchResponse",
        "HealthResponse",
        "DrainResponse",
        "SoakConfig",
        "MiniClient",
        "run_soak",
    ):
        assert symbol in gateway.__all__, symbol
        assert hasattr(gateway, symbol), symbol

    # Every wire model exposes the parse/wire round trip the typed
    # schema contract promises, and schema faults carry stable codes.
    for cls in (
        gateway.RewriteRequest,
        gateway.SearchRequest,
        gateway.BatchRequest,
        gateway.RewriteResponse,
        gateway.SearchResponse,
        gateway.BatchResponse,
        gateway.HealthResponse,
        gateway.DrainResponse,
        gateway.ErrorEnvelope,
    ):
        assert callable(getattr(cls, "parse")), cls.__name__
        assert callable(getattr(cls, "to_wire")), cls.__name__
    fault = gateway.SchemaError("invalid_type", "boom", field="query")
    assert fault.code == "invalid_type"
    envelope = gateway.ErrorEnvelope(
        code=fault.code, message=fault.message, field=fault.field
    )
    assert envelope.status == 400


def test_decoding_surface():
    """The decode loop is part of repro.decoding's public contract."""
    from repro import decoding

    for symbol in (
        "Hypothesis",
        "greedy_decode",
        "greedy_decode_batch",
        "top_n_sampling",
        "top_n_sampling_batch",
        "sample_top_n_pools",
        "beam_search",
        "beam_search_batch",
        "diverse_beam_search",
    ):
        assert symbol in decoding.__all__, symbol
        assert hasattr(decoding, symbol), symbol

    # The frozen seed implementations stay importable: they are the
    # equivalence oracle and the benchmark baseline, not dead code.
    from repro.decoding import reference

    for symbol in (
        "start_uncached",
        "greedy_decode_batch_reference",
        "top_n_sampling_reference",
        "top_n_sampling_batch_reference",
        "beam_search_reference",
        "beam_search_batch_reference",
    ):
        assert callable(getattr(reference, symbol)), symbol

    # Models expose the decode-work gauges the compaction contract
    # reports through ServingStats.
    from repro.models import HybridNMT, RecurrentNMT, TransformerNMT
    from repro.models.base import Seq2SeqModel

    for cls in (TransformerNMT, HybridNMT, RecurrentNMT):
        assert issubclass(cls, Seq2SeqModel)
        assert callable(getattr(cls, "reset_decode_counters")), cls.__name__


def test_store_surface():
    """The persistence layer is part of repro.store's public contract."""
    from repro import store

    for symbol in (
        "SegmentStore",
        "Manifest",
        "SegmentRef",
        "StoreError",
        "SegmentCorruptError",
        "SegmentVersionError",
        "ManifestError",
        "ManifestVersionError",
        "FORMAT_NAME",
        "FORMAT_VERSION",
        "MANIFEST_NAME",
        "read_segment_file",
    ):
        assert symbol in store.__all__, symbol
        assert hasattr(store, symbol), symbol

    # The typed hierarchy the corruption contract promises.
    assert issubclass(store.SegmentCorruptError, store.StoreError)
    assert issubclass(store.SegmentVersionError, store.SegmentCorruptError)
    assert issubclass(store.ManifestError, store.StoreError)
    assert issubclass(store.ManifestVersionError, store.ManifestError)

    # The search tier actually exposes the wired persistence methods.
    from repro.search import (
        HybridSearchEngine,
        ShardedSearchEngine,
        ShardedVectorIndex,
        VectorIndex,
    )
    from repro.search.inverted_index import InvertedIndex
    from repro.search.sharded import ShardedIndex

    for cls in (
        InvertedIndex,
        VectorIndex,
        ShardedIndex,
        ShardedVectorIndex,
        ShardedSearchEngine,
        HybridSearchEngine,
    ):
        assert callable(getattr(cls, "save")), cls.__name__
        assert callable(getattr(cls, "load")), cls.__name__
