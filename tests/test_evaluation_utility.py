"""The Section-V offline utility metric: novelty × relatedness."""

import numpy as np
import pytest

from repro.core.rewriter import RewriteResult
from repro.evaluation import (
    method_utility,
    rewrite_utility,
    spearman_correlation,
)
from repro.search import SearchEngine


@pytest.fixture(scope="module")
def engine(tiny_market):
    return SearchEngine(tiny_market.catalog)


@pytest.fixture(scope="module")
def encoder(tiny_market):
    from repro.embedding import DualEncoder, train_dual_encoder

    enc = DualEncoder(tiny_market.vocab)
    train_dual_encoder(enc, tiny_market.train_pairs, steps=120,
                       rng=np.random.default_rng(0))
    return enc


class TestRewriteUtility:
    def test_identity_rewrite_has_zero_utility(self, engine, encoder):
        """The identity retrieves nothing new: useless however relevant."""
        scores = rewrite_utility("mobile phone", "mobile phone", engine, encoder)
        assert scores["novelty"] == 0.0
        assert scores["utility"] == 0.0

    def test_empty_rewrite_scores_zero(self, engine, encoder):
        assert rewrite_utility("mobile phone", "", engine, encoder)["utility"] == 0.0
        assert rewrite_utility("", "mobile phone", engine, encoder)["utility"] == 0.0

    def test_nonretrieving_rewrite_scores_zero(self, engine, encoder):
        scores = rewrite_utility("mobile phone", "zzz unknown tokens", engine, encoder)
        assert scores["utility"] == 0.0

    def test_on_intent_diverse_rewrite_beats_off_intent(self, engine, encoder):
        """A colloquial query rewritten into catalog language should score
        above a rewrite into a different category."""
        original = "cellphone for grandpa"
        good = rewrite_utility(original, "senior mobile phone", engine, encoder)
        bad = rewrite_utility(original, "fresh imported fruit", engine, encoder)
        assert good["utility"] > bad["utility"]

    def test_components_in_unit_interval(self, engine, encoder, tiny_market):
        for q, t, _ in tiny_market.train_pairs[:10]:
            scores = rewrite_utility(list(q), list(t)[:3], engine, encoder)
            assert 0.0 <= scores["novelty"] <= 1.0
            assert 0.0 <= scores["relatedness"] <= 1.0
            assert 0.0 <= scores["utility"] <= 1.0


class TestMethodUtility:
    class _Fixed:
        def __init__(self, mapping):
            self.mapping = mapping

        def rewrite(self, query, k=3):
            return [
                RewriteResult(tokens=tuple(r.split()), log_prob=0.0)
                for r in self.mapping.get(query, [])[:k]
            ]

    def test_uncovered_queries_score_zero(self, engine, encoder):
        method = self._Fixed({})
        row = method_utility(method, ["mobile phone"], engine, encoder)
        assert row["utility"] == 0.0

    def test_good_method_beats_identityish_method(self, engine, encoder):
        queries = ["cellphone for grandpa", "sneaker for kid"]
        diverse = self._Fixed({
            "cellphone for grandpa": ["senior mobile phone"],
            "sneaker for kid": ["children shoe"],
        })
        lazy = self._Fixed({
            "cellphone for grandpa": ["cellphone for grandpa"],
            "sneaker for kid": ["sneaker for kid"],
        })
        good = method_utility(diverse, queries, engine, encoder)
        bad = method_utility(lazy, queries, engine, encoder)
        assert good["utility"] > bad["utility"]

    def test_empty_query_set_rejected(self, engine, encoder):
        with pytest.raises(ValueError):
            method_utility(self._Fixed({}), [], engine, encoder)


class TestSpearman:
    def test_perfect_correlation(self):
        assert spearman_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert spearman_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert spearman_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            spearman_correlation([1], [1, 2])

    def test_ties_averaged(self):
        value = spearman_correlation([1, 1, 2], [1, 2, 3])
        assert -1.0 <= value <= 1.0


class TestAlignmentWithGroundTruth:
    def _ground_truth_gain(self, tiny_market, engine, query: str, rewrite: str, intent) -> float:
        """The true rewriting objective: NEW relevant items retrieved."""
        base = set(engine.search(query).doc_ids)
        extra = set(engine.search(rewrite).doc_ids) - base if rewrite else set()
        if not extra:
            return 0.0
        gained = sum(
            1 for d in extra if intent.matches(tiny_market.catalog.get(d)) > 0.3
        )
        return gained / len(extra)

    def test_utility_correlates_with_relevant_recall_gain(
        self, engine, encoder, tiny_market
    ):
        """The metric's purpose: without labels, rank rewrites by how much
        *new relevant recall* they add — the objective neither F1 nor raw
        cosine captures (the paper's §V complaint)."""
        from repro.data.catalog import CATEGORY_SPECS
        from repro.text import ngram_f1, tokenize

        records = [
            r for r in tiny_market.click_log.queries.values() if r.total_clicks >= 3
        ][:15]
        utilities, f1s, gains = [], [], []
        for record in records:
            canonical = " ".join(CATEGORY_SPECS[record.intent.category].canonical)
            other = "fresh fruit" if record.intent.category != "fruit" else "mobile phone"
            for rewrite in (canonical, other, record.text):
                utilities.append(
                    rewrite_utility(record.text, rewrite, engine, encoder)["utility"]
                )
                f1s.append(ngram_f1(tokenize(rewrite), tokenize(record.text)))
                gains.append(
                    self._ground_truth_gain(
                        tiny_market, engine, record.text, rewrite, record.intent
                    )
                )
        utility_corr = spearman_correlation(utilities, gains)
        f1_corr = spearman_correlation(f1s, gains)
        assert utility_corr > 0.3
        # ... and it must beat the F1 proxy the paper finds misaligned.
        assert utility_corr > f1_corr
