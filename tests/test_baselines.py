"""Rule-based rewriter and SimRank++ baseline."""

import numpy as np
import pytest

from repro.baselines import RuleBasedRewriter, SimRankPP, SimRankConfig
from repro.data.synonyms import build_rule_dictionary


class TestRuleBasedRewriter:
    @pytest.fixture()
    def rewriter(self):
        return RuleBasedRewriter(build_rule_dictionary())

    def test_single_token_replacement(self, rewriter):
        results = rewriter.rewrite("phone for grandpa")
        texts = [r.text for r in results]
        assert "phone for senior" in texts

    def test_multi_token_replacement_target(self, rewriter):
        results = rewriter.rewrite("cheap cellphone")
        texts = [r.text for r in results]
        assert "cheap mobile phone" in texts  # one alias -> two tokens

    def test_one_rewrite_per_match(self, rewriter):
        results = rewriter.rewrite("cellphone for grandpa")
        # two matched phrases -> two rewrites, each replacing one phrase
        assert len(results) == 2
        for result in results:
            assert result.tokens != ("cellphone", "for", "grandpa")

    def test_no_match_returns_empty(self, rewriter):
        assert rewriter.rewrite("red sock") == []

    def test_k_limits_output(self, rewriter):
        results = rewriter.rewrite("cellphone for grandpa and grandma", k=1)
        assert len(results) == 1

    def test_polyseme_trap_is_context_blind(self, rewriter):
        """The dictionary rewrites 'cherry' toward keyboards even in a fruit
        context — the paper's Section IV-C2 failure case."""
        results = rewriter.rewrite("fresh cherry fruit")
        assert any("keyboard" in r.text for r in results)

    def test_has_rule_for(self, rewriter):
        assert rewriter.has_rule_for("cellphone please")
        assert not rewriter.has_rule_for("red sock")

    def test_longest_match_preferred(self):
        rewriter = RuleBasedRewriter({"milk": "dairy", "milk powder": "formula"})
        results = rewriter.rewrite("milk powder")
        assert results[0].text == "formula"

    def test_identity_rules_skipped(self):
        rewriter = RuleBasedRewriter({"same": "same"})
        assert rewriter.rewrite("same thing") == []

    def test_rewrite_accepts_token_list(self, rewriter):
        results = rewriter.rewrite(["cellphone"])
        assert results and results[0].text == "mobile phone"


class TestSimRankPP:
    @pytest.fixture(scope="class")
    def simrank(self, tiny_market):
        return SimRankPP(tiny_market.click_log, SimRankConfig(max_queries=150, iterations=4))

    def test_similarity_matrix_properties(self, simrank):
        sim = simrank.similarity
        n = len(simrank.queries)
        assert sim.shape == (n, n)
        np.testing.assert_allclose(np.diag(sim), np.ones(n))
        np.testing.assert_allclose(sim, sim.T, atol=1e-9)
        assert np.all(sim >= -1e-9)
        assert np.all(sim <= 1.0 + 1e-9)

    def test_rewrites_are_known_queries(self, simrank):
        query = simrank.queries[0]
        for result in simrank.rewrite(query, k=3):
            assert result.text in simrank.queries
            assert result.text != query

    def test_unknown_query_gets_nothing(self, simrank):
        assert simrank.rewrite("totally novel query") == []

    def test_rewrites_share_category_mostly(self, simrank, tiny_market):
        """SimRank++ similar queries should stay in the intent category."""
        log = tiny_market.click_log
        same = 0
        total = 0
        for query in simrank.queries[:20]:
            intent = log.queries[query].intent
            for result in simrank.rewrite(query, k=2):
                total += 1
                same += log.queries[result.text].intent.category == intent.category
        if total == 0:
            pytest.skip("no rewrites produced")
        assert same / total > 0.8

    def test_coverage_bounded_by_config(self, tiny_market):
        simrank = SimRankPP(tiny_market.click_log, SimRankConfig(max_queries=10))
        assert simrank.coverage() <= 10

    def test_evidence_dampens_single_common_neighbor(self, tiny_market):
        """evidence = 1 - 2^-c: a single shared product halves the score."""
        simrank = SimRankPP(tiny_market.click_log, SimRankConfig(max_queries=50))
        evidence = simrank._evidence()
        adjacency = (simrank._weights > 0).astype(float)
        common = adjacency @ adjacency.T
        np.testing.assert_allclose(evidence, 1.0 - 2.0**-common, atol=1e-12)

    def test_decay_reduces_similarity(self, tiny_market):
        low = SimRankPP(tiny_market.click_log, SimRankConfig(decay=0.4, max_queries=60))
        high = SimRankPP(tiny_market.click_log, SimRankConfig(decay=0.9, max_queries=60))
        off_diag_low = low.similarity - np.diag(np.diag(low.similarity))
        off_diag_high = high.similarity - np.diag(np.diag(high.similarity))
        assert off_diag_low.sum() <= off_diag_high.sum() + 1e-9
