"""Decoder-only LM and the Section-V LM rewriter."""

import numpy as np
import pytest

from repro.core import LMRewriter, LMRewriterConfig, build_lm_sequences
from repro.models import DecoderOnlyLM, ModelConfig
from repro.models.lm import SEP1, SEP2
from repro.optim import Adam

TINY = ModelConfig(
    vocab_size=48, d_model=16, num_heads=2, d_ff=32,
    encoder_layers=1, decoder_layers=1, dropout=0.0, max_len=48, seed=0,
)


class TestDecoderOnlyLM:
    def test_forward_shape(self):
        lm = DecoderOnlyLM(TINY)
        logits = lm.forward(np.array([[5, 6, 7], [8, 9, 0]]))
        assert logits.shape == (2, 3, 48)

    def test_causality(self):
        """Future tokens must not influence earlier logits."""
        lm = DecoderOnlyLM(TINY)
        lm.eval()
        from repro.autograd import no_grad

        a = np.array([[5, 6, 7, 8]])
        b = np.array([[5, 6, 7, 9]])  # differs only at the last position
        with no_grad():
            logits_a = lm.forward(a).data
            logits_b = lm.forward(b).data
        np.testing.assert_allclose(logits_a[0, :3], logits_b[0, :3], atol=1e-9)

    def test_loss_trains(self):
        lm = DecoderOnlyLM(TINY)
        rng = np.random.default_rng(0)
        data = rng.integers(4, 48, size=(8, 10))
        data[:, 0] = 5  # deterministic-ish structure
        optimizer = Adam(lm.parameters(), lr=5e-3)
        first = None
        for _ in range(25):
            lm.zero_grad()
            loss, _ = lm.loss(data)
            if first is None:
                first = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first

    def test_generate_respects_stop_and_forbid(self):
        lm = DecoderOnlyLM(TINY)
        lm.eval()
        out = lm.generate(
            [5, 6], max_new_tokens=10, stop_ids={2},
            rng=np.random.default_rng(0), top_n=3, forbid_ids={7},
        )
        assert len(out) <= 10
        assert 7 not in out
        assert 2 not in out

    def test_generate_respects_max_len(self):
        lm = DecoderOnlyLM(TINY.scaled(max_len=6))
        lm.eval()
        out = lm.generate([5, 6, 7], max_new_tokens=50, stop_ids=set(),
                          rng=np.random.default_rng(0))
        assert len(out) <= 3  # context budget 6 - prefix 3


class TestLMSequences:
    def test_sequence_format(self, tiny_market):
        vocab = tiny_market.vocab
        sequences = build_lm_sequences(
            tiny_market.train_pairs[:20], tiny_market.synonym_pairs, vocab
        )
        sep1 = vocab.token_to_id(SEP1)
        sep2 = vocab.token_to_id(SEP2)
        for seq in sequences:
            assert seq.count(sep1) == 1
            assert seq.count(sep2) == 1
            assert seq.index(sep1) < seq.index(sep2)
            assert seq[-1] == vocab.eos_id

    def test_separators_registered_once(self, tiny_market):
        vocab = tiny_market.vocab
        first = vocab.add_token(SEP1)
        second = vocab.add_token(SEP1)
        assert first == second


class TestLMRewriter:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_market):
        rewriter = LMRewriter(
            tiny_market.vocab,
            model_config=TINY.scaled(vocab_size=len(tiny_market.vocab)),
            config=LMRewriterConfig(train_steps=120, top_n=5, seed=0),
        )
        sequences = build_lm_sequences(
            tiny_market.train_pairs, tiny_market.synonym_pairs, tiny_market.vocab
        )
        losses = rewriter.fit(sequences)
        return rewriter, losses

    def test_training_reduces_loss(self, fitted):
        _, losses = fitted
        assert np.mean(losses[-10:]) < np.mean(losses[:10]) * 0.8

    def test_rewrites_have_title_provenance(self, fitted, tiny_market):
        rewriter, _ = fitted
        query = " ".join(tiny_market.train_pairs[0][0])
        results = rewriter.rewrite(query, k=2)
        for result in results:
            assert result.tokens
            assert result.via_title

    def test_rewrites_exclude_original_and_separators(self, fitted, tiny_market):
        rewriter, _ = fitted
        for q, _, _ in tiny_market.train_pairs[:5]:
            query = " ".join(q)
            for result in rewriter.rewrite(query, k=2):
                assert result.text != query
                assert SEP1 not in result.tokens
                assert SEP2 not in result.tokens

    def test_empty_query(self, fitted):
        rewriter, _ = fitted
        assert rewriter.rewrite("") == []

    def test_fit_requires_data(self, tiny_market):
        rewriter = LMRewriter(tiny_market.vocab, model_config=TINY)
        with pytest.raises(ValueError):
            rewriter.fit([])
