"""Gateway lifecycle invariants: drain, rate limits, shedding, isolation.

Everything here runs over the real socket path (ephemeral loopback
port), with tiny fake pipelines so the suite stays fast.  The pinned
invariants:

* **drain conservation** — after ``/v1/drain`` every admitted request is
  accounted (``completed + shed``), new serving requests get 503
  ``draining``, health/stats keep answering, and a second drain is an
  idempotent receipt read;
* **rate-limit isolation** — an over-rate tenant gets 429
  ``rate_limited`` with a ``Retry-After`` header; other tenants are
  untouched, and the telemetry attributes the 429s to the offender only;
* **admission shedding over HTTP** — arrival sheds and priority
  evictions each surface as a 429 ``queue_full`` on exactly the shed
  request's connection, while every admitted request still completes;
* **tenant isolation** — per-tenant caches never leak across tenants,
  audited end to end through the HTTP responses and ``/v1/stats``.
"""

from __future__ import annotations

import asyncio

from repro.core import RewriteCache, ServingConfig, ServingPipeline
from repro.core.rewriter import RewriteResult
from repro.gateway import Gateway, GatewayConfig, MiniClient
from repro.gateway.ratelimit import RateLimitConfig
from repro.gateway.schemas import (
    DrainResponse,
    ErrorEnvelope,
    HealthResponse,
    StatsResponse,
)
from repro.online.clock import WallClock
from repro.online.scheduler import SchedulerConfig
from repro.search.engine import SearchOutcome

#: dispatch-immediately policy for the tests that are not about queues
IMMEDIATE = SchedulerConfig(
    max_batch_size=1, max_wait_seconds=0.0, max_queue_depth=4096, num_lanes=2
)

#: hold-everything policy: nothing dispatches until a drain flushes it
PARKED = SchedulerConfig(
    max_batch_size=64, max_wait_seconds=60.0, max_queue_depth=2, num_lanes=2
)

#: effectively-unlimited buckets for the tests that are not about limits
OPEN_BUCKETS = RateLimitConfig(rate_per_second=1e6, burst=1_000_000)


class MarkedRewriter:
    """Rewrites every query to ``<query> <marker>`` — leak-visible output."""

    def __init__(self, marker: str):
        self.marker = marker

    def rewrite(self, query, k=3):
        """One deterministic rewrite carrying this tenant's marker."""
        return [RewriteResult(tokens=(query, self.marker), log_prob=-1.0)][:k]


class TinyEngine:
    """Fixed two-hit engine (lexical-only by the getattr default)."""

    def search(self, query, rewrites=None):
        """Constant outcome; retrieval cost is irrelevant here."""
        return SearchOutcome(
            query=query,
            rewrites=list(rewrites or []),
            doc_ids=[1, 2],
            postings_accessed=3,
            tree_nodes=1,
            num_trees=1,
        )


def make_pipelines(clock, tenants=("acme", "globex")) -> dict:
    """One fast fake pipeline per tenant, each with its own cache."""
    return {
        tenant: ServingPipeline(
            RewriteCache(ttl_seconds=1e9, clock=clock.now),
            MarkedRewriter(tenant),
            ServingConfig(cache_model_results=True),
            search_engine=TinyEngine(),
            tenant=tenant,
        )
        for tenant in tenants
    }


def make_config(scheduler=IMMEDIATE, rate_limit=OPEN_BUCKETS) -> GatewayConfig:
    """Gateway config with the test's scheduler/limit policy."""
    return GatewayConfig(scheduler=scheduler, rate_limit=rate_limit)


async def wait_for_queue_depth(probe: MiniClient, depth: int) -> None:
    """Poll ``/v1/health`` until the global queue holds ``depth`` requests."""
    for _ in range(2000):
        _, _, health = await probe.get("/v1/health")
        if health["queue_depth"] >= depth:
            return
        await asyncio.sleep(0.002)
    raise AssertionError(f"queue never reached depth {depth}")


class TestDrain:
    def test_drain_conserves_and_is_idempotent(self):
        async def run():
            clock = WallClock()
            async with Gateway(
                make_pipelines(clock), make_config(), clock=clock
            ) as gateway:
                client = MiniClient(gateway.config.host, gateway.port)
                try:
                    for n in range(4):
                        status, _, _ = await client.post(
                            "/v1/rewrite", {"query": f"q{n}", "tenant": "acme"}
                        )
                        assert status == 200
                    status, _, receipt = await client.post("/v1/drain", {})
                    assert status == 200
                    # the wire form is schema-valid and conserves exactly
                    parsed = DrainResponse.parse(receipt)
                    assert parsed.draining is True
                    assert parsed.admitted == 4
                    assert parsed.completed + parsed.shed == parsed.admitted
                    assert parsed.shed == 0

                    # new serving work is refused with a typed 503
                    status, _, refused = await client.post(
                        "/v1/rewrite", {"query": "late", "tenant": "acme"}
                    )
                    assert status == 503
                    assert ErrorEnvelope.parse(refused).code == "draining"

                    # health/stats keep answering and agree on the state
                    status, _, health = await client.get("/v1/health")
                    assert status == 200
                    assert HealthResponse.parse(health).status == "draining"
                    status, _, stats = await client.get("/v1/stats")
                    assert status == 200
                    assert StatsResponse.parse(stats).gateway["drains"] == 1

                    # a second drain is a pure receipt read
                    status, _, second = await client.post("/v1/drain", {})
                    assert status == 200
                    assert second["admitted"] == receipt["admitted"]
                    _, _, stats = await client.get("/v1/stats")
                    assert stats["gateway"]["drains"] == 1
                finally:
                    await client.close()

        asyncio.run(run())

    def test_drain_flushes_parked_requests_with_zero_loss(self):
        """Requests parked behind a far deadline all complete on drain."""

        async def run():
            clock = WallClock()
            config = make_config(scheduler=PARKED)
            async with Gateway(
                make_pipelines(clock), config, clock=clock
            ) as gateway:
                hangers = [
                    MiniClient(gateway.config.host, gateway.port)
                    for _ in range(2)
                ]
                probe = MiniClient(gateway.config.host, gateway.port)
                try:
                    tasks = [
                        asyncio.create_task(
                            hanger.post(
                                "/v1/rewrite",
                                {"query": f"parked{n}", "tenant": "acme"},
                            )
                        )
                        for n, hanger in enumerate(hangers)
                    ]
                    await wait_for_queue_depth(probe, 2)
                    assert not any(task.done() for task in tasks)
                    _, _, receipt = await probe.post("/v1/drain", {})
                    statuses = [
                        (await task)[0] for task in tasks
                    ]
                    assert statuses == [200, 200]
                    assert receipt["admitted"] == 2
                    assert receipt["completed"] == 2
                    assert receipt["shed"] == 0
                finally:
                    for hanger in hangers:
                        await hanger.close()
                    await probe.close()

        asyncio.run(run())


class TestRateLimits:
    def test_only_the_offending_tenant_is_limited(self):
        async def run():
            clock = WallClock()
            config = make_config(
                rate_limit=RateLimitConfig(rate_per_second=0.5, burst=2)
            )
            async with Gateway(
                make_pipelines(clock), config, clock=clock
            ) as gateway:
                client = MiniClient(gateway.config.host, gateway.port)
                try:
                    # tenant acme spends its burst, then trips the bucket
                    for n in range(2):
                        status, _, _ = await client.post(
                            "/v1/rewrite", {"query": f"q{n}", "tenant": "acme"}
                        )
                        assert status == 200
                    status, headers, body = await client.post(
                        "/v1/rewrite", {"query": "q2", "tenant": "acme"}
                    )
                    assert status == 429
                    envelope = ErrorEnvelope.parse(body)
                    assert envelope.code == "rate_limited"
                    assert envelope.field == "tenant"
                    assert 0.0 < envelope.retry_after_seconds <= 2.0
                    assert float(headers["retry-after"]) > 0.0

                    # tenant globex rides through untouched
                    status, _, _ = await client.post(
                        "/v1/rewrite", {"query": "q0", "tenant": "globex"}
                    )
                    assert status == 200

                    # the telemetry attributes the 429 to the offender only
                    _, _, stats = await client.get("/v1/stats")
                    limited = stats["gateway"]["rate_limited_by_tenant"]
                    assert limited == {"acme": 1}
                    assert stats["gateway"]["errors_by_code"] == {
                        "rate_limited": 1
                    }
                finally:
                    await client.close()

        asyncio.run(run())


class TestShedding:
    def test_arrival_shed_is_a_429_and_admitted_work_completes(self):
        async def run():
            clock = WallClock()
            config = make_config(scheduler=PARKED)
            async with Gateway(
                make_pipelines(clock), config, clock=clock
            ) as gateway:
                hangers = [
                    MiniClient(gateway.config.host, gateway.port)
                    for _ in range(2)
                ]
                probe = MiniClient(gateway.config.host, gateway.port)
                try:
                    tasks = [
                        asyncio.create_task(
                            hanger.post(
                                "/v1/rewrite",
                                {"query": f"early{n}", "tenant": "acme"},
                            )
                        )
                        for n, hanger in enumerate(hangers)
                    ]
                    await wait_for_queue_depth(probe, 2)
                    # the queue is full of equal-priority work: shed arrival
                    status, headers, body = await probe.post(
                        "/v1/rewrite", {"query": "late", "tenant": "acme"}
                    )
                    assert status == 429
                    envelope = ErrorEnvelope.parse(body)
                    assert envelope.code == "queue_full"
                    assert envelope.retry_after_seconds > 0.0
                    assert "retry-after" in headers

                    _, _, receipt = await probe.post("/v1/drain", {})
                    assert [(await task)[0] for task in tasks] == [200, 200]
                    # zero admitted requests lost; the shed one was never
                    # admitted and is accounted separately
                    assert receipt["admitted"] == 2
                    assert receipt["completed"] == 2
                    assert receipt["shed"] == 1
                finally:
                    for hanger in hangers:
                        await hanger.close()
                    await probe.close()

        asyncio.run(run())

    def test_priority_eviction_429s_the_victims_connection(self):
        """Lane-0 arrivals evict parked lane-1 work; the victims' own
        in-flight HTTP requests resolve to 429 ``queue_full``."""

        async def run():
            clock = WallClock()
            config = make_config(scheduler=PARKED)
            async with Gateway(
                make_pipelines(clock), config, clock=clock
            ) as gateway:
                low = [
                    MiniClient(gateway.config.host, gateway.port)
                    for _ in range(2)
                ]
                probe = MiniClient(gateway.config.host, gateway.port)
                high_clients: list = []
                try:
                    parked = [
                        asyncio.create_task(
                            client.post(
                                "/v1/rewrite",
                                {
                                    "query": f"low{n}",
                                    "tenant": "acme",
                                    "lane": 1,
                                },
                            )
                        )
                        for n, client in enumerate(low)
                    ]
                    await wait_for_queue_depth(probe, 2)
                    # two high-priority arrivals evict the two parked ones
                    # (each on its own connection — a keep-alive client
                    # serializes, and these requests park until the drain)
                    high_clients.extend(
                        MiniClient(gateway.config.host, gateway.port)
                        for _ in range(2)
                    )
                    high = []
                    for n in range(2):
                        high.append(
                            asyncio.create_task(
                                high_clients[n].post(
                                    "/v1/rewrite",
                                    {
                                        "query": f"high{n}",
                                        "tenant": "acme",
                                        "lane": 0,
                                    },
                                )
                            )
                        )
                        # eviction sheds the youngest parked lane-1 request
                        # and resolves its future (and connection) at once
                        victim_status, _, victim_body = await parked[1 - n]
                        assert victim_status == 429
                        assert ErrorEnvelope.parse(victim_body).code == (
                            "queue_full"
                        )
                    drainer = MiniClient(gateway.config.host, gateway.port)
                    try:
                        _, _, receipt = await drainer.post("/v1/drain", {})
                    finally:
                        await drainer.close()
                    assert [(await task)[0] for task in high] == [200, 200]
                    # victims were admitted then shed: the receipt's
                    # conservation identity holds exactly
                    assert receipt["admitted"] == 4
                    assert receipt["completed"] == 2
                    assert receipt["shed"] == 2
                    assert receipt["admitted"] == (
                        receipt["completed"] + receipt["shed"]
                    )
                finally:
                    for client in low + high_clients:
                        await client.close()
                    await probe.close()

        asyncio.run(run())

    def test_batch_reports_partial_sheds_per_item(self):
        """A batch overrunning the queue gets per-item 429 envelopes in
        place, while the admitted items still serve — one 200 response."""

        async def run():
            clock = WallClock()
            config = make_config(scheduler=PARKED)
            async with Gateway(
                make_pipelines(clock), config, clock=clock
            ) as gateway:
                client = MiniClient(gateway.config.host, gateway.port)
                probe = MiniClient(gateway.config.host, gateway.port)
                try:
                    items = [
                        {"kind": "rewrite", "query": f"item{n}"}
                        for n in range(5)
                    ]
                    task = asyncio.create_task(
                        client.post(
                            "/v1/batch", {"items": items, "tenant": "acme"}
                        )
                    )
                    await wait_for_queue_depth(probe, 2)
                    _, _, receipt = await probe.post("/v1/drain", {})
                    status, _, body = await task
                    assert status == 200
                    results = body["results"]
                    assert len(results) == 5
                    served = [r for r in results if "error" not in r]
                    shed = [r for r in results if "error" in r]
                    assert len(served) == 2 and len(shed) == 3
                    # order preserved: the first two items were admitted
                    assert [r["query"] for r in served] == ["item0", "item1"]
                    for entry in shed:
                        assert entry["error"]["code"] == "queue_full"
                    assert receipt["admitted"] == 2
                    assert receipt["completed"] == 2
                    assert receipt["shed"] == 3
                finally:
                    await client.close()
                    await probe.close()

        asyncio.run(run())


class TestTenantIsolation:
    def test_caches_never_leak_across_tenants_over_http(self):
        """The cross-tenant no-leak audit, end to end through the API:
        a rewrite cached for one tenant must not serve another, and the
        per-tenant stats must attribute every request to its own tenant."""

        async def run():
            clock = WallClock()
            async with Gateway(
                make_pipelines(clock), make_config(), clock=clock
            ) as gateway:
                client = MiniClient(gateway.config.host, gateway.port)
                try:
                    # acme asks twice: model tier then its own cache
                    _, _, first = await client.post(
                        "/v1/rewrite", {"query": "blue mug", "tenant": "acme"}
                    )
                    _, _, second = await client.post(
                        "/v1/rewrite", {"query": "blue mug", "tenant": "acme"}
                    )
                    assert first["source"] == "model"
                    assert second["source"] == "cache"
                    assert first["rewrites"] == ["blue mug acme"]

                    # globex asks the same query: a miss, served by its
                    # own model tier with its own marker — no leak
                    _, _, other = await client.post(
                        "/v1/rewrite", {"query": "blue mug", "tenant": "globex"}
                    )
                    assert other["source"] == "model"
                    assert other["rewrites"] == ["blue mug globex"]

                    # search answers carry the tenant's rewrites too
                    _, _, searched = await client.post(
                        "/v1/search", {"query": "blue mug", "tenant": "globex"}
                    )
                    assert searched["rewrites"] == ["blue mug globex"]

                    # the stats attribute work tenant-by-tenant, exactly
                    _, _, stats = await client.get("/v1/stats")
                    serving = stats["serving"]
                    assert serving["acme"]["cache_served"] == 1
                    assert serving["acme"]["model_served"] == 1
                    assert serving["globex"]["cache_served"] == 1
                    assert serving["globex"]["model_served"] == 1
                    assert (
                        stats["totals"]["cache_served"]
                        + stats["totals"]["model_served"]
                        == 4
                    )
                    scheduler = stats["scheduler"]
                    assert scheduler["acme"]["admitted"] == 2
                    assert scheduler["globex"]["admitted"] == 2
                finally:
                    await client.close()

        asyncio.run(run())


class TestRoutingErrors:
    def test_unknown_tenant_unsupported_mode_and_unknown_route(self):
        async def run():
            clock = WallClock()
            async with Gateway(
                make_pipelines(clock), make_config(), clock=clock
            ) as gateway:
                client = MiniClient(gateway.config.host, gateway.port)
                try:
                    status, _, body = await client.post(
                        "/v1/rewrite", {"query": "q", "tenant": "nobody"}
                    )
                    assert status == 400
                    envelope = ErrorEnvelope.parse(body)
                    assert envelope.code == "invalid_value"
                    assert envelope.field == "tenant"

                    # well-formed but unsupported mode: 400, never a 500
                    status, _, body = await client.post(
                        "/v1/search",
                        {"query": "q", "tenant": "acme", "mode": "semantic"},
                    )
                    assert status == 400
                    assert ErrorEnvelope.parse(body).code == "invalid_value"

                    status, _, body = await client.get("/v1/nope")
                    assert status == 404
                    assert ErrorEnvelope.parse(body).code == "not_found"

                    status, _, body = await client.get("/v1/rewrite")
                    assert status == 405
                    assert ErrorEnvelope.parse(body).code == (
                        "method_not_allowed"
                    )
                finally:
                    await client.close()

        asyncio.run(run())
