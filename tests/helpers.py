"""Numerical gradient checking shared by autograd/nn tests."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f() with respect to array x
    (f must read x by reference)."""
    grad = np.zeros_like(x)
    iterator = np.nditer(x, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = x[index]
        x[index] = original + eps
        f_plus = f()
        x[index] = original - eps
        f_minus = f()
        x[index] = original
        grad[index] = (f_plus - f_minus) / (2.0 * eps)
        iterator.iternext()
    return grad


def assert_grad_matches(build, *shapes, seed: int = 0, atol: float = 1e-4):
    """Check autograd gradients of scalar-valued ``build(*tensors)`` against
    numerical differentiation for every input."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=shape) for shape in shapes]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = build(*tensors)
    out.backward()

    for position, array in enumerate(arrays):
        def scalar() -> float:
            fresh = [Tensor(a) for a in arrays]
            return float(build(*fresh).data)

        expected = numerical_gradient(scalar, array)
        actual = tensors[position].grad
        assert actual is not None, f"input {position} received no gradient"
        np.testing.assert_allclose(actual, expected, atol=atol, err_msg=f"input {position}")
