"""Hybrid lexical/semantic engine: fusion math, modes, churn lockstep."""

import numpy as np
import pytest

from repro.core.cache import RewriteCache
from repro.core.serving import ServingConfig, ServingPipeline
from repro.data.catalog import CatalogConfig, CatalogGenerator
from repro.embedding import DualEncoder, DualEncoderConfig
from repro.search import (
    HybridConfig,
    HybridSearchEngine,
    SearchConfig,
    ShardedSearchEngine,
    reciprocal_rank_fusion,
    weighted_score_fusion,
)


class TestReciprocalRankFusion:
    def test_agreement_outranks_single_list(self):
        fused = reciprocal_rank_fusion([[1, 2, 3], [2, 4]], k=4)
        assert fused[0][1] == 2  # in both lists
        assert {doc for _, doc in fused} == {1, 2, 3, 4}

    def test_scores_match_formula(self):
        fused = dict(
            (doc, score) for score, doc in reciprocal_rank_fusion([[7], [7]], k=1, rrf_k=60)
        )
        assert fused[7] == pytest.approx(2.0 / 61.0)

    def test_ties_break_by_doc_id(self):
        fused = reciprocal_rank_fusion([[9], [4]], k=2)
        assert [doc for _, doc in fused] == [4, 9]

    def test_k_bounds_output(self):
        assert len(reciprocal_rank_fusion([[1, 2, 3, 4, 5]], k=2)) == 2

    def test_bad_rrf_k(self):
        with pytest.raises(ValueError):
            reciprocal_rank_fusion([[1]], k=1, rrf_k=0)


class TestWeightedScoreFusion:
    def test_min_max_normalization(self):
        lexical = [(10.0, 1), (0.0, 2)]
        semantic = [(0.9, 2), (0.1, 1)]
        fused = dict(
            (doc, score)
            for score, doc in weighted_score_fusion(lexical, semantic, k=2, alpha=0.5)
        )
        # doc 1: 0.5*1.0 + 0.5*0.0 ; doc 2: 0.5*0.0 + 0.5*1.0
        assert fused[1] == pytest.approx(0.5)
        assert fused[2] == pytest.approx(0.5)

    def test_alpha_extremes_select_one_list(self):
        lexical = [(5.0, 1), (1.0, 2)]
        semantic = [(0.9, 3), (0.2, 4)]
        lex_only = weighted_score_fusion(lexical, semantic, k=1, alpha=1.0)
        sem_only = weighted_score_fusion(lexical, semantic, k=1, alpha=0.0)
        assert lex_only[0][1] == 1
        assert sem_only[0][1] == 3

    def test_constant_list_normalizes_to_ones(self):
        fused = weighted_score_fusion([(3.0, 1), (3.0, 2)], [], k=2, alpha=1.0)
        assert [score for score, _ in fused] == [pytest.approx(1.0)] * 2

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            weighted_score_fusion([], [], k=1, alpha=1.5)


@pytest.fixture(scope="module")
def hybrid_engine(tiny_market):
    encoder = DualEncoder(tiny_market.vocab, DualEncoderConfig(seed=0))
    engine = HybridSearchEngine(
        tiny_market.catalog,
        encoder,
        SearchConfig(max_candidates=20, ranker="bm25"),
        num_shards=2,
        num_clusters=4,
        parallel=False,
        seed=0,
    )
    yield engine
    engine.close()


class TestHybridSearchEngine:
    def test_lexical_mode_matches_sharded_engine(self, hybrid_engine, tiny_market):
        reference = ShardedSearchEngine(
            tiny_market.catalog,
            SearchConfig(max_candidates=20, ranker="bm25"),
            num_shards=2,
            parallel=False,
        )
        ours = hybrid_engine.search("senior mobile phone", mode="lexical")
        theirs = reference.search("senior mobile phone")
        assert ours.doc_ids == theirs.doc_ids
        assert ours.mode == "lexical"
        reference.close()

    def test_semantic_mode_touches_no_postings(self, hybrid_engine):
        outcome = hybrid_engine.search("senior mobile phone", mode="semantic")
        assert outcome.mode == "semantic"
        assert outcome.postings_accessed == 0
        assert outcome.doc_ids
        assert len(outcome.scores) == len(outcome.doc_ids)

    def test_every_mode_honors_max_candidates(self, hybrid_engine):
        """semantic_k (100) feeds fusion; returned lists cap at top-k (20)."""
        k = hybrid_engine.lexical.config.max_candidates
        assert hybrid_engine.config.semantic_k > k
        for mode in ("lexical", "semantic", "hybrid"):
            outcome = hybrid_engine.search("senior mobile phone", mode=mode)
            assert len(outcome.doc_ids) <= k, mode

    def test_hybrid_unions_both_tiers(self, hybrid_engine):
        lexical = hybrid_engine.search("senior mobile phone", mode="lexical")
        semantic = hybrid_engine.search("senior mobile phone", mode="semantic")
        hybrid = hybrid_engine.search("senior mobile phone", mode="hybrid")
        assert hybrid.mode == "hybrid"
        assert set(hybrid.doc_ids) <= set(lexical.doc_ids) | set(semantic.doc_ids)
        # RRF puts tier-agreement first: the top fused doc is in both lists
        # whenever any doc is.
        both = set(lexical.doc_ids) & set(semantic.doc_ids)
        if both:
            assert hybrid.doc_ids[0] in both

    def test_unknown_mode_raises(self, hybrid_engine):
        with pytest.raises(ValueError):
            hybrid_engine.search("phone", mode="psychic")

    def test_weighted_fusion_config(self, tiny_market):
        encoder = DualEncoder(tiny_market.vocab, DualEncoderConfig(seed=0))
        engine = HybridSearchEngine(
            tiny_market.catalog,
            encoder,
            SearchConfig(max_candidates=10, ranker="bm25"),
            HybridConfig(fusion="weighted", alpha=0.7),
            num_shards=2,
            parallel=False,
        )
        outcome = engine.search("senior mobile phone")
        assert outcome.mode == "hybrid"
        assert outcome.doc_ids
        engine.close()

    def test_bad_fusion_config(self):
        with pytest.raises(ValueError):
            HybridConfig(fusion="mystery")

    def test_bad_config_knobs_rejected_at_construction(self):
        for bad in (
            dict(nprobe=0),
            dict(semantic_k=0),
            dict(rrf_k=0),
            dict(alpha=1.5),
            dict(default_mode="psychic"),
        ):
            with pytest.raises(ValueError):
                HybridConfig(**bad)

    def test_rejected_add_rolls_back_every_tier(self, hybrid_engine, tiny_market):
        """A vector-tier rejection must not leave the product lexical-only."""
        generator = CatalogGenerator(CatalogConfig(seed=11))
        product = generator.sample_product(
            "shoe", tiny_market.catalog.next_product_id(), np.random.default_rng(11)
        )
        # Pre-occupy the id in the vector tier so its add_document raises
        # after the lexical add succeeded.
        hybrid_engine.vector.add_document(product.product_id, np.zeros(32))
        with pytest.raises(ValueError):
            hybrid_engine.add_product(product)
        assert product.product_id not in tiny_market.catalog
        assert product.product_id not in hybrid_engine.lexical.index
        hybrid_engine.vector.remove_document(product.product_id)

    def test_remove_unknown_product_touches_nothing(self, hybrid_engine, tiny_market):
        before = len(tiny_market.catalog)
        with pytest.raises(KeyError):
            hybrid_engine.remove_product(10_000_000)
        assert len(tiny_market.catalog) == before
        assert len(hybrid_engine.vector) == before

    def test_churn_updates_all_tiers_in_lockstep(self, hybrid_engine, tiny_market):
        generator = CatalogGenerator(CatalogConfig(seed=3))
        rng = np.random.default_rng(3)
        product = generator.sample_product(
            "phone", tiny_market.catalog.next_product_id(), rng
        )
        hybrid_engine.add_product(product)
        assert product.product_id in tiny_market.catalog
        assert product.product_id in hybrid_engine.lexical.index
        assert product.product_id in hybrid_engine.vector

        hybrid_engine.remove_product(product.product_id)
        assert product.product_id not in tiny_market.catalog
        assert product.product_id not in hybrid_engine.lexical.index
        assert product.product_id not in hybrid_engine.vector
        # the vector tier must never surface the delisted product again
        title = " ".join(product.title_tokens)
        for mode in ("lexical", "semantic", "hybrid"):
            assert product.product_id not in hybrid_engine.search(title, mode=mode).doc_ids


class TestPipelineRetrievalModes:
    def make_pipeline(self, engine):
        cache = RewriteCache()
        cache.put("senior mobile phone", ["grandpa cellphone"])
        return ServingPipeline(
            cache, None, ServingConfig(max_rewrites=2), search_engine=engine
        )

    def test_per_request_modes(self, hybrid_engine):
        pipeline = self.make_pipeline(hybrid_engine)
        results = pipeline.search_batch(
            ["senior mobile phone"] * 3, modes=["lexical", "semantic", "hybrid"]
        )
        assert all(r.doc_ids for r in results)
        assert pipeline.stats.search_by_mode == {
            "lexical": 1, "semantic": 1, "hybrid": 1,
        }

    def test_single_mode_broadcasts(self, hybrid_engine):
        pipeline = self.make_pipeline(hybrid_engine)
        pipeline.search_batch(["senior mobile phone"] * 2, modes="semantic")
        assert pipeline.stats.search_by_mode == {"semantic": 2}

    def test_default_mode_is_engines_default(self, hybrid_engine):
        pipeline = self.make_pipeline(hybrid_engine)
        pipeline.search_batch(["senior mobile phone"])
        assert pipeline.stats.search_by_mode == {"hybrid": 1}

    def test_untokenizable_request_tallies_under_default_mode(self, hybrid_engine):
        """A skipped retrieval still lands in the mode that would have run."""
        pipeline = self.make_pipeline(hybrid_engine)
        results = pipeline.search_batch(["!!!"])
        assert results[0].doc_ids == []
        assert pipeline.stats.search_by_mode == {"hybrid": 1}

    def test_mode_count_mismatch_raises(self, hybrid_engine):
        pipeline = self.make_pipeline(hybrid_engine)
        with pytest.raises(ValueError):
            pipeline.search_batch(["a", "b"], modes=["lexical"])

    def test_lexical_only_engine_rejects_semantic(self, tiny_market):
        engine = ShardedSearchEngine(
            tiny_market.catalog, SearchConfig(ranker="bm25"), num_shards=2, parallel=False
        )
        pipeline = self.make_pipeline(engine)
        with pytest.raises(ValueError, match="not supported"):
            pipeline.search_batch(["senior mobile phone"], modes="semantic")
        # but explicit lexical passes through
        results = pipeline.search_batch(["senior mobile phone"], modes="lexical")
        assert results[0].doc_ids
        engine.close()
