"""Rewrite cache (bounded sharded LRU) and the two-tier serving pipeline."""

import pytest

from repro.core import RewriteCache, ServingConfig, ServingPipeline, ServingStats
from repro.core.rewriter import RewriteResult


class StubRewriter:
    """Deterministic rewriter for serving tests."""

    def __init__(self, mapping=None):
        self.mapping = mapping or {}
        self.calls = 0

    def rewrite(self, query, k=3):
        self.calls += 1
        rewrites = self.mapping.get(query, [])
        return [RewriteResult(tokens=tuple(r.split()), log_prob=-1.0) for r in rewrites[:k]]


class BatchStubRewriter(StubRewriter):
    """Stub with batch support, recording the batches it received."""

    def __init__(self, mapping=None):
        super().__init__(mapping)
        self.batches: list[list[str]] = []

    def rewrite_batch(self, queries, k=3):
        self.batches.append(list(queries))
        return [super(BatchStubRewriter, self).rewrite(q, k) for q in queries]


class TestRewriteCache:
    def test_put_get_roundtrip(self):
        cache = RewriteCache()
        cache.put("Senior Phone", ["senior mobile phone"])
        assert cache.get("senior  phone") == ["senior mobile phone"]  # normalized

    def test_miss_returns_none_and_counts(self):
        cache = RewriteCache()
        assert cache.get("unknown") is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_hit_rate(self):
        cache = RewriteCache()
        cache.put("a", ["b"])
        cache.get("a")
        cache.get("a")
        cache.get("z")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_contains_and_len(self):
        cache = RewriteCache()
        cache.put("a", ["b"])
        assert "a" in cache
        assert "b" not in cache
        assert len(cache) == 1

    def test_get_returns_copy(self):
        cache = RewriteCache()
        cache.put("a", ["b"])
        result = cache.get("a")
        result.append("mutation")
        assert cache.get("a") == ["b"]

    def test_populate(self):
        cache = RewriteCache()
        rewriter = StubRewriter({"q1": ["r1"], "q2": []})
        filled = cache.populate(rewriter, ["q1", "q2"], k=3)
        assert filled == 1
        assert cache.get("q1") == ["r1"]
        assert cache.get("q2") is None


class TestBoundedCache:
    def test_capacity_never_exceeded(self):
        cache = RewriteCache(capacity=8, shards=4)
        for i in range(100):
            cache.put(f"query number {i}", [f"rewrite {i}"])
            assert len(cache) <= 8
        assert cache.stats.evictions == 100 - len(cache)

    def test_lru_eviction_order(self):
        cache = RewriteCache(capacity=2)
        cache.put("a", ["ra"])
        cache.put("b", ["rb"])
        cache.put("c", ["rc"])  # evicts a (least recently used)
        assert cache.get("a") is None
        assert cache.get("b") == ["rb"]
        assert cache.get("c") == ["rc"]
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = RewriteCache(capacity=2)
        cache.put("a", ["ra"])
        cache.put("b", ["rb"])
        assert cache.get("a") == ["ra"]  # a is now most recent
        cache.put("c", ["rc"])  # evicts b, not a
        assert cache.get("a") == ["ra"]
        assert cache.get("b") is None

    def test_put_refreshes_recency(self):
        cache = RewriteCache(capacity=2)
        cache.put("a", ["ra"])
        cache.put("b", ["rb"])
        cache.put("a", ["ra2"])  # refresh, no eviction
        assert cache.stats.evictions == 0
        cache.put("c", ["rc"])  # evicts b
        assert cache.get("a") == ["ra2"]
        assert cache.get("b") is None

    def test_shard_distribution(self):
        cache = RewriteCache(capacity=64, shards=4)
        for i in range(64):
            cache.put(f"some query text {i}", ["r"])
        occupancy = cache.shard_occupancy()
        assert len(occupancy) == 4
        assert sum(occupancy) == len(cache) == 64
        # The crc32 hash spreads keys: every shard holds something, and no
        # shard exceeds its per-shard budget (capacity split evenly).
        assert all(0 < n <= 16 for n in occupancy)

    def test_per_shard_eviction_counters(self):
        cache = RewriteCache(capacity=4, shards=2)
        for i in range(40):
            cache.put(f"query {i}", ["r"])
        assert sum(cache.shard_evictions()) == cache.stats.evictions > 0

    def test_ttl_expiry(self):
        now = [0.0]
        cache = RewriteCache(ttl_seconds=10, clock=lambda: now[0])
        cache.put("a", ["ra"])
        assert cache.get("a") == ["ra"]
        now[0] = 10.5
        assert "a" not in cache
        assert cache.get("a") is None
        assert cache.stats.expirations == 1
        assert len(cache) == 0  # collected on access

    def test_ttl_refreshed_by_put(self):
        now = [0.0]
        cache = RewriteCache(ttl_seconds=10, clock=lambda: now[0])
        cache.put("a", ["ra"])
        now[0] = 8.0
        cache.put("a", ["ra2"])  # re-stamped
        now[0] = 12.0
        assert cache.get("a") == ["ra2"]

    def test_fill_ratio(self):
        cache = RewriteCache(capacity=4)
        assert cache.fill_ratio == 0.0
        cache.put("a", ["r"])
        assert cache.fill_ratio == pytest.approx(0.25)
        unbounded = RewriteCache()
        unbounded.put("a", ["r"])
        assert unbounded.fill_ratio == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RewriteCache(shards=0)
        with pytest.raises(ValueError):
            RewriteCache(capacity=2, shards=4)
        with pytest.raises(ValueError):
            RewriteCache(ttl_seconds=0)

    def test_unbounded_default_never_evicts(self):
        cache = RewriteCache()
        for i in range(500):
            cache.put(f"q{i}", ["r"])
        assert len(cache) == 500
        assert cache.stats.evictions == 0


class TestCacheExpiryRegressions:
    """Expired entries must be collected on ANY access path, and capacity
    pressure must never evict a live entry while an expired one survives."""

    def test_contains_collects_expired_entry(self):
        # Regression: __contains__ used to detect expiry but leave the
        # entry occupying capacity, uncounted.
        now = [0.0]
        cache = RewriteCache(ttl_seconds=10, clock=lambda: now[0])
        cache.put("a", ["ra"])
        now[0] = 11.0
        assert "a" not in cache
        assert len(cache) == 0
        assert cache.stats.expirations == 1
        # Collected exactly once: the follow-up get is a plain miss.
        assert cache.get("a") is None
        assert cache.stats.expirations == 1
        assert cache.stats.misses == 1

    def test_expired_entry_never_forces_live_eviction(self):
        # Regression: a get() refreshed an entry's recency without
        # re-stamping its TTL, so an *expired* entry could sit at the MRU
        # end while a *live* one sat at the LRU front — and put() evicted
        # the live one.
        now = [0.0]
        cache = RewriteCache(capacity=2, ttl_seconds=10, clock=lambda: now[0])
        cache.put("x", ["rx"])  # written t=0
        now[0] = 6.0
        cache.put("y", ["ry"])  # written t=6
        now[0] = 7.0
        assert cache.get("x") == ["rx"]  # x now MRU; y is the LRU front
        now[0] = 12.0  # x expired (age 12 > 10), y live (age 6)
        cache.put("z", ["rz"])
        assert cache.get("y") == ["ry"]  # pre-fix: y was evicted here
        assert cache.get("z") == ["rz"]
        assert cache.get("x") is None
        assert cache.stats.evictions == 0
        assert cache.stats.expirations == 1

    def test_live_entries_still_evict_lru_when_nothing_expired(self):
        now = [0.0]
        cache = RewriteCache(capacity=2, ttl_seconds=100, clock=lambda: now[0])
        cache.put("a", ["ra"])
        cache.put("b", ["rb"])
        cache.put("c", ["rc"])
        assert cache.get("a") is None
        assert cache.stats.evictions == 1
        assert cache.stats.expirations == 0


class TestFreshnessApis:
    """delete / purge_expired / stored_at / expiring_within — the surface
    the online freshness controller drives."""

    def test_delete_removes_without_counting(self):
        cache = RewriteCache()
        cache.put("a", ["r"])
        assert cache.delete("A ") is True  # normalized key
        assert cache.delete("a") is False
        assert len(cache) == 0
        assert cache.stats.evictions == 0
        assert cache.stats.expirations == 0

    def test_purge_expired_sweeps_all_shards(self):
        now = [0.0]
        cache = RewriteCache(shards=2, ttl_seconds=10, clock=lambda: now[0])
        for i in range(6):
            cache.put(f"query {i}", ["r"])
        now[0] = 5.0
        cache.put("late", ["r"])
        now[0] = 12.0  # the first six expired; "late" is live
        assert cache.purge_expired() == 6
        assert cache.stats.expirations == 6
        assert len(cache) == 1
        assert cache.get("late") == ["r"]
        assert cache.purge_expired() == 0

    def test_purge_correct_after_refresh_moves_expiry_forward(self):
        # The earliest-expiry fast path must stay conservative when an
        # entry is re-put (its old, earlier expiry no longer exists).
        now = [0.0]
        cache = RewriteCache(ttl_seconds=10, clock=lambda: now[0])
        cache.put("a", ["r"])
        now[0] = 5.0
        cache.put("a", ["r2"])  # re-stamped: expires at 15, not 10
        now[0] = 12.0
        assert cache.purge_expired() == 0  # nothing actually expired
        assert cache.get("a") == ["r2"]
        now[0] = 16.0
        assert cache.purge_expired() == 1

    def test_purge_expired_without_ttl_is_noop(self):
        cache = RewriteCache()
        cache.put("a", ["r"])
        assert cache.purge_expired() == 0
        assert len(cache) == 1

    def test_stored_at_is_a_pure_peek(self):
        now = [3.0]
        cache = RewriteCache(capacity=2, ttl_seconds=10, clock=lambda: now[0])
        cache.put("a", ["ra"])
        assert cache.stored_at("a") == 3.0
        assert cache.stored_at("missing") is None
        # No hit/miss accounting...
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0
        # ...and no LRU refresh: "a" is still the eviction victim.
        cache.put("b", ["rb"])
        cache.put("c", ["rc"])
        assert cache.get("a") is None
        # Expired entries read as absent (and are not collected by a peek).
        now[0] = 20.0
        assert cache.stored_at("b") is None

    def test_expiring_within_margin(self):
        now = [0.0]
        cache = RewriteCache(ttl_seconds=10, clock=lambda: now[0])
        cache.put("early bird", ["r"])  # expires at t=10
        now[0] = 5.0
        cache.put("late riser", ["r"])  # expires at t=15
        now[0] = 7.0
        assert cache.expiring_within(1.0) == []
        assert cache.expiring_within(4.0) == ["early bird"]
        assert sorted(cache.expiring_within(10.0)) == ["early bird", "late riser"]

    def test_expiring_within_without_ttl_is_empty(self):
        cache = RewriteCache()
        cache.put("a", ["r"])
        assert cache.expiring_within(1e9) == []


class TestCachedEmptyServing:
    """A cache hit whose rewrite list truncates to empty is an
    authoritative answer, not a miss to re-decode every request."""

    def test_cached_empty_served_from_cache_tier(self):
        cache = RewriteCache()
        cache.put("q", [])  # negative entry stored directly
        fallback = StubRewriter({"q": ["model rewrite"]})
        pipeline = ServingPipeline(cache, fallback)
        for _ in range(3):
            served = pipeline.serve("q")
            assert served.source == "cache"
            assert served.rewrites == []
        # Regression: every one of these used to pay a model decode.
        assert fallback.calls == 0
        assert pipeline.stats.cache_served == 3
        assert pipeline.stats.model_served == 0

    def test_max_rewrites_zero_truncation_still_a_hit(self):
        cache = RewriteCache()
        cache.put("q", ["a", "b"])
        fallback = StubRewriter({"q": ["m"]})
        pipeline = ServingPipeline(cache, fallback, ServingConfig(max_rewrites=0))
        served = pipeline.serve("q")
        assert served.source == "cache"
        assert served.rewrites == []
        assert fallback.calls == 0
        assert cache.stats.hits == 1

    def test_serve_batch_cached_empty_accounting(self):
        cache = RewriteCache()
        cache.put("negative", [])
        fallback = BatchStubRewriter({"tail": ["model rewrite"]})
        pipeline = ServingPipeline(cache, fallback)
        served = pipeline.serve_batch(["negative", "tail"])
        assert [s.source for s in served] == ["cache", "model"]
        # Only the true miss reached the batched decode.
        assert fallback.batches == [["tail"]]
        assert pipeline.stats.cache_served == 1
        assert pipeline.stats.model_served == 1

    def test_unservable_results_never_written_back(self):
        cache = RewriteCache()
        fallback = StubRewriter({"q": ["m"]})
        pipeline = ServingPipeline(
            cache, fallback, ServingConfig(max_rewrites=0, cache_model_results=True)
        )
        served = pipeline.serve("q")
        assert served.source == "none"
        assert len(cache) == 0  # nothing unservable stored


class TestServingStatsPercentiles:
    def test_p99_nearest_rank(self):
        # nearest-rank: ceil(0.99 * 100) = 100th smallest -> index 98 -> 99.0,
        # not the old int(0.99*n) indexing that returned the maximum.
        stats = ServingStats(latencies_ms=[float(i) for i in range(1, 101)])
        assert stats.p99_latency_ms() == 99.0
        assert stats.p95_latency_ms() == 95.0
        assert stats.p50_latency_ms() == 50.0

    def test_single_sample(self):
        stats = ServingStats(latencies_ms=[7.0])
        assert stats.p50_latency_ms() == 7.0
        assert stats.p99_latency_ms() == 7.0

    def test_empty(self):
        stats = ServingStats()
        assert stats.p50_latency_ms() == 0.0
        assert stats.p99_latency_ms() == 0.0

    def test_invalid_quantile(self):
        stats = ServingStats(latencies_ms=[1.0])
        with pytest.raises(ValueError):
            stats.percentile_latency_ms(0.0)
        with pytest.raises(ValueError):
            stats.percentile_latency_ms(1.5)


class TestServeBatch:
    def test_mixed_batch_tier_accounting(self):
        cache = RewriteCache()
        cache.put("head", ["cached rewrite"])
        fallback = BatchStubRewriter({"tail": ["model rewrite"]})
        pipeline = ServingPipeline(cache, fallback)
        served = pipeline.serve_batch(["head", "tail", "unknown"])
        assert [s.source for s in served] == ["cache", "model", "none"]
        assert [s.query for s in served] == ["head", "tail", "unknown"]
        stats = pipeline.stats
        assert stats.cache_served == 1
        assert stats.model_served == 1
        assert stats.unserved == 1
        assert stats.total == 3
        assert stats.batches == 1
        assert len(stats.latencies_ms) == 3

    def test_misses_share_one_batched_call(self):
        fallback = BatchStubRewriter({"t1": ["r1"], "t2": ["r2"]})
        pipeline = ServingPipeline(RewriteCache(), fallback)
        pipeline.serve_batch(["t1", "t2"])
        assert fallback.batches == [["t1", "t2"]]
        assert fallback.calls == 2  # via the batch path only

    def test_cache_hits_bypass_model(self):
        cache = RewriteCache()
        cache.put("head", ["cached"])
        fallback = BatchStubRewriter({"head": ["model"]})
        pipeline = ServingPipeline(cache, fallback)
        served = pipeline.serve_batch(["head", "head"])
        assert fallback.batches == []
        assert all(s.source == "cache" for s in served)

    def test_falls_back_to_per_query_rewrite(self):
        fallback = StubRewriter({"t": ["r"]})  # no rewrite_batch
        pipeline = ServingPipeline(RewriteCache(), fallback)
        served = pipeline.serve_batch(["t", "t"])
        assert [s.source for s in served] == ["model", "model"]
        assert fallback.calls == 2

    def test_max_rewrites_enforced(self):
        cache = RewriteCache()
        cache.put("q", ["a", "b", "c", "d"])
        fallback = BatchStubRewriter({"t": ["1", "2", "3", "4"]})
        pipeline = ServingPipeline(cache, fallback, ServingConfig(max_rewrites=2))
        served = pipeline.serve_batch(["q", "t"])
        assert len(served[0].rewrites) == 2
        assert len(served[1].rewrites) == 2

    def test_empty_batch(self):
        pipeline = ServingPipeline(RewriteCache(), StubRewriter())
        assert pipeline.serve_batch([]) == []
        assert pipeline.stats.total == 0
        assert pipeline.stats.batches == 0

    def test_no_fallback_counts_unserved(self):
        pipeline = ServingPipeline(RewriteCache(), None)
        served = pipeline.serve_batch(["a", "b"])
        assert all(s.source == "none" for s in served)
        assert pipeline.stats.unserved == 2

    def test_model_writeback_promotes_and_respects_capacity(self):
        cache = RewriteCache(capacity=2, shards=1)
        fallback = BatchStubRewriter({f"t{i}": [f"r{i}"] for i in range(6)})
        pipeline = ServingPipeline(
            cache, fallback, ServingConfig(cache_model_results=True)
        )
        pipeline.serve_batch([f"t{i}" for i in range(6)])
        assert len(cache) <= 2
        assert pipeline.stats.cache_evictions > 0
        # The promoted entries now hit the cache tier.
        served = pipeline.serve_batch(["t5"])
        assert served[0].source == "cache"

    def test_cache_gauges_threaded_into_stats(self):
        cache = RewriteCache(capacity=4, shards=2)
        pipeline = ServingPipeline(cache, None)
        cache.put("a", ["r"])
        pipeline.serve_batch(["a"])
        stats = pipeline.stats
        assert stats.cache_fill_ratio == pytest.approx(0.25)
        assert sum(stats.cache_shard_occupancy) == 1
        assert len(stats.cache_shard_occupancy) == 2


class TestServingPipeline:
    def test_cache_tier_served_first(self):
        cache = RewriteCache()
        cache.put("head query", ["cached rewrite"])
        fallback = StubRewriter({"head query": ["model rewrite"]})
        pipeline = ServingPipeline(cache, fallback)
        served = pipeline.serve("head query")
        assert served.source == "cache"
        assert served.rewrites == ["cached rewrite"]
        assert fallback.calls == 0

    def test_model_tier_on_miss(self):
        fallback = StubRewriter({"tail query": ["model rewrite"]})
        pipeline = ServingPipeline(RewriteCache(), fallback)
        served = pipeline.serve("tail query")
        assert served.source == "model"
        assert served.rewrites == ["model rewrite"]

    def test_unserved_when_nothing_available(self):
        pipeline = ServingPipeline(RewriteCache(), StubRewriter())
        served = pipeline.serve("nothing")
        assert served.source == "none"
        assert served.rewrites == []

    def test_max_rewrites_enforced(self):
        cache = RewriteCache()
        cache.put("q", ["a", "b", "c", "d", "e"])
        pipeline = ServingPipeline(cache, None, ServingConfig(max_rewrites=2))
        assert len(pipeline.serve("q").rewrites) == 2

    def test_stats_accumulate(self):
        cache = RewriteCache()
        cache.put("hit", ["r"])
        pipeline = ServingPipeline(cache, StubRewriter({"model": ["m"]}))
        pipeline.serve("hit")
        pipeline.serve("model")
        pipeline.serve("none")
        stats = pipeline.stats
        assert stats.cache_served == 1
        assert stats.model_served == 1
        assert stats.unserved == 1
        assert stats.total == 3
        assert len(stats.latencies_ms) == 3
        assert stats.mean_latency_ms() >= 0.0
        assert stats.p99_latency_ms() >= 0.0

    def test_cache_only_pipeline(self):
        cache = RewriteCache()
        cache.put("q", ["r"])
        pipeline = ServingPipeline(cache, None)
        assert pipeline.serve("q").source == "cache"
        assert pipeline.serve("other").source == "none"


class StubSearchEngine:
    """Deterministic retrieval engine: doc ids keyed by sorted token set."""

    def __init__(self):
        self.calls: list[tuple[str, tuple[str, ...]]] = []

    def search(self, query, rewrites=None):
        from repro.search import SearchOutcome

        rewrites = rewrites or []
        self.calls.append((query, tuple(rewrites)))
        n = len(query.split()) + len(rewrites)
        return SearchOutcome(
            query=query,
            rewrites=list(rewrites),
            doc_ids=list(range(n)),
            postings_accessed=10 * n,
            tree_nodes=n,
            num_trees=1,
        )


class TestSearchBatch:
    def test_requires_engine(self):
        pipeline = ServingPipeline(RewriteCache(), None)
        with pytest.raises(ValueError):
            pipeline.search_batch(["q"])

    def test_rewrites_feed_retrieval(self):
        cache = RewriteCache()
        cache.put("head query", ["head rewrite one", "head rewrite two"])
        engine = StubSearchEngine()
        pipeline = ServingPipeline(cache, None, search_engine=engine)
        results = pipeline.search_batch(["head query"])
        assert engine.calls == [("head query", ("head rewrite one", "head rewrite two"))]
        assert results[0].query == "head query"
        assert results[0].served.source == "cache"
        assert results[0].doc_ids
        assert results[0].postings_accessed > 0

    def test_batch_order_and_tiers(self):
        cache = RewriteCache()
        cache.put("hit", ["cached rewrite"])
        fallback = BatchStubRewriter({"miss": ["model rewrite"]})
        engine = StubSearchEngine()
        pipeline = ServingPipeline(cache, fallback, search_engine=engine)
        results = pipeline.search_batch(["hit", "miss", "nothing"])
        assert [r.query for r in results] == ["hit", "miss", "nothing"]
        assert [r.served.source for r in results] == ["cache", "model", "none"]
        # one stacked decode for the two misses
        assert fallback.batches == [["miss", "nothing"]]
        # unserved queries still retrieve on the original query alone
        assert engine.calls[-1] == ("nothing", ())

    def test_untokenizable_query_yields_empty_docs(self):
        engine = StubSearchEngine()
        pipeline = ServingPipeline(RewriteCache(), None, search_engine=engine)
        results = pipeline.search_batch(["   "])
        assert results[0].doc_ids == []
        assert results[0].postings_accessed == 0
        assert engine.calls == []  # never reached the engine

    def test_stats_accumulate_postings(self):
        cache = RewriteCache()
        cache.put("a", ["r1"])
        cache.put("b", ["r2"])
        engine = StubSearchEngine()
        pipeline = ServingPipeline(cache, None, search_engine=engine)
        pipeline.search_batch(["a", "b"])
        assert pipeline.stats.search_requests == 2
        assert pipeline.stats.search_postings_accessed == sum(
            10 * (len(q.split()) + 1) for q in ("a", "b")
        )

    def test_latency_includes_retrieval(self):
        cache = RewriteCache()
        cache.put("q", ["r"])
        pipeline = ServingPipeline(cache, None, search_engine=StubSearchEngine())
        result = pipeline.search_batch(["q"])[0]
        assert result.latency_ms >= result.served.latency_ms

    def test_end_to_end_with_real_engine(self, tiny_market):
        from repro.search import SearchConfig, SearchEngine

        engine = SearchEngine(tiny_market.catalog, SearchConfig(max_candidates=10))
        cache = RewriteCache()
        cache.put("mobile phone", ["senior mobile phone"])
        pipeline = ServingPipeline(cache, None, search_engine=engine)
        result = pipeline.search_batch(["mobile phone"])[0]
        assert result.served.source == "cache"
        assert result.doc_ids
        assert all(
            tiny_market.catalog.get(d).category == "phone" for d in result.doc_ids
        )
