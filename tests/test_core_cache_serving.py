"""Rewrite cache and the two-tier serving pipeline."""

import pytest

from repro.core import RewriteCache, ServingConfig, ServingPipeline
from repro.core.rewriter import RewriteResult


class StubRewriter:
    """Deterministic rewriter for serving tests."""

    def __init__(self, mapping=None):
        self.mapping = mapping or {}
        self.calls = 0

    def rewrite(self, query, k=3):
        self.calls += 1
        rewrites = self.mapping.get(query, [])
        return [RewriteResult(tokens=tuple(r.split()), log_prob=-1.0) for r in rewrites[:k]]


class TestRewriteCache:
    def test_put_get_roundtrip(self):
        cache = RewriteCache()
        cache.put("Senior Phone", ["senior mobile phone"])
        assert cache.get("senior  phone") == ["senior mobile phone"]  # normalized

    def test_miss_returns_none_and_counts(self):
        cache = RewriteCache()
        assert cache.get("unknown") is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_hit_rate(self):
        cache = RewriteCache()
        cache.put("a", ["b"])
        cache.get("a")
        cache.get("a")
        cache.get("z")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_contains_and_len(self):
        cache = RewriteCache()
        cache.put("a", ["b"])
        assert "a" in cache
        assert "b" not in cache
        assert len(cache) == 1

    def test_get_returns_copy(self):
        cache = RewriteCache()
        cache.put("a", ["b"])
        result = cache.get("a")
        result.append("mutation")
        assert cache.get("a") == ["b"]

    def test_populate(self):
        cache = RewriteCache()
        rewriter = StubRewriter({"q1": ["r1"], "q2": []})
        filled = cache.populate(rewriter, ["q1", "q2"], k=3)
        assert filled == 1
        assert cache.get("q1") == ["r1"]
        assert cache.get("q2") is None


class TestServingPipeline:
    def test_cache_tier_served_first(self):
        cache = RewriteCache()
        cache.put("head query", ["cached rewrite"])
        fallback = StubRewriter({"head query": ["model rewrite"]})
        pipeline = ServingPipeline(cache, fallback)
        served = pipeline.serve("head query")
        assert served.source == "cache"
        assert served.rewrites == ["cached rewrite"]
        assert fallback.calls == 0

    def test_model_tier_on_miss(self):
        fallback = StubRewriter({"tail query": ["model rewrite"]})
        pipeline = ServingPipeline(RewriteCache(), fallback)
        served = pipeline.serve("tail query")
        assert served.source == "model"
        assert served.rewrites == ["model rewrite"]

    def test_unserved_when_nothing_available(self):
        pipeline = ServingPipeline(RewriteCache(), StubRewriter())
        served = pipeline.serve("nothing")
        assert served.source == "none"
        assert served.rewrites == []

    def test_max_rewrites_enforced(self):
        cache = RewriteCache()
        cache.put("q", ["a", "b", "c", "d", "e"])
        pipeline = ServingPipeline(cache, None, ServingConfig(max_rewrites=2))
        assert len(pipeline.serve("q").rewrites) == 2

    def test_stats_accumulate(self):
        cache = RewriteCache()
        cache.put("hit", ["r"])
        pipeline = ServingPipeline(cache, StubRewriter({"model": ["m"]}))
        pipeline.serve("hit")
        pipeline.serve("model")
        pipeline.serve("none")
        stats = pipeline.stats
        assert stats.cache_served == 1
        assert stats.model_served == 1
        assert stats.unserved == 1
        assert stats.total == 3
        assert len(stats.latencies_ms) == 3
        assert stats.mean_latency_ms() >= 0.0
        assert stats.p99_latency_ms() >= 0.0

    def test_cache_only_pipeline(self):
        cache = RewriteCache()
        cache.put("q", ["r"])
        pipeline = ServingPipeline(cache, None)
        assert pipeline.serve("q").source == "cache"
        assert pipeline.serve("other").source == "none"
