"""Corruption fuzz: every injected fault is detected or provably harmless.

The store's integrity contract is binary: a load either restores state
**byte-identically** or raises a typed :class:`~repro.store.StoreError`
subclass.  There is no third outcome — a corrupted file must never
produce silently wrong search results, and no foreign exception
(``zlib.error``, ``struct.error``, ``KeyError``, ``JSONDecodeError``,
``UnicodeDecodeError``...) may leak through the typed surface.

Two layers of attack:

* **Seeded fuzz** — random bit-flips, truncations, and zero-fill
  windows at seeded offsets across every file of a pristine store
  (segments and manifest alike), each trial restored afterwards so
  trials stay independent.
* **Targeted mutations** — each format field that guards a specific
  failure mode (magic, segment version, manifest version, manifest
  checksum, per-segment checksum, doc counts) is attacked directly and
  must raise its *specific* error type.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.data.catalog import CatalogConfig, CatalogGenerator
from repro.search import SearchConfig, ShardedSearchEngine, ShardedVectorIndex
from repro.store import (
    MANIFEST_NAME,
    ManifestError,
    ManifestVersionError,
    SegmentCorruptError,
    SegmentVersionError,
    StoreError,
)

#: seeded fuzz trials per corruption family (x3 families, x2 tiers)
TRIALS_PER_FAMILY = 25
DIM = 10


@pytest.fixture(scope="module")
def lexical_store(tmp_path_factory):
    """A pristine 2-shard lexical store plus its oracle rankings."""
    root = tmp_path_factory.mktemp("lexical-store")
    generator = CatalogGenerator(CatalogConfig(products_per_category=6, seed=21))
    engine = ShardedSearchEngine(
        generator.generate(), SearchConfig(ranker="bm25"), num_shards=2,
        parallel=False,
    )
    engine.save(root)
    queries = [
        " ".join(p.title_tokens[:2]) for p in engine.catalog.products[:12]
    ]
    oracle = {q: engine.search(q) for q in queries}
    return root, engine.catalog, oracle


@pytest.fixture(scope="module")
def vector_store(tmp_path_factory):
    """A pristine 2-shard vector store plus its oracle probe results."""
    root = tmp_path_factory.mktemp("vector-store")
    rng = np.random.default_rng(22)
    vectors = rng.standard_normal((90, DIM))
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
    index = ShardedVectorIndex(DIM, num_shards=2, num_clusters=4, parallel=False, seed=0)
    index.fit(list(range(90)), vectors)
    index.save(root)
    oracle = {i: index.search(vectors[i], 10) for i in range(12)}
    return root, vectors, oracle


def _load_lexical(root, catalog):
    return ShardedSearchEngine.load(
        catalog, root, SearchConfig(ranker="bm25"), parallel=False
    )


def _fuzz(root, load, check_identical, seed) -> dict[str, int]:
    """Corrupt one file per trial; classify detected/identical/silent."""
    rng = np.random.default_rng(seed)
    files = sorted(path for path in root.iterdir() if path.is_file())
    tally = {"detected": 0, "identical": 0, "silent": 0}
    for trial in range(3 * TRIALS_PER_FAMILY):
        victim = files[trial % len(files)]
        pristine = victim.read_bytes()
        family = trial % 3
        mutated = bytearray(pristine)
        if family == 0:  # bit flip
            at = int(rng.integers(len(mutated)))
            mutated[at] ^= 1 << int(rng.integers(8))
            victim.write_bytes(bytes(mutated))
        elif family == 1:  # truncation (possibly to nothing)
            victim.write_bytes(pristine[: int(rng.integers(len(pristine)))])
        else:  # zero-fill window
            at = int(rng.integers(len(mutated)))
            width = int(rng.integers(1, 16))
            mutated[at : at + width] = b"\x00" * len(mutated[at : at + width])
            victim.write_bytes(bytes(mutated))
        try:
            loaded = load()
        except StoreError:
            tally["detected"] += 1
        else:
            tally["identical" if check_identical(loaded) else "silent"] += 1
        finally:
            victim.write_bytes(pristine)
    return tally


class TestSeededFuzz:
    def test_lexical_store_never_loads_silently_wrong(self, lexical_store):
        root, catalog, oracle = lexical_store

        def identical(loaded) -> bool:
            return all(
                loaded.search(q).doc_ids == want.doc_ids
                and loaded.search(q).scores == want.scores
                for q, want in oracle.items()
            )

        tally = _fuzz(root, lambda: _load_lexical(root, catalog), identical, seed=31)
        assert tally["silent"] == 0, tally
        # The fuzz must actually bite: the vast majority of mutations hit
        # checksummed bytes and must be DETECTED, not accidentally benign.
        assert tally["detected"] >= 2 * TRIALS_PER_FAMILY, tally

    def test_vector_store_never_loads_silently_wrong(self, vector_store):
        root, vectors, oracle = vector_store

        def identical(loaded) -> bool:
            return all(
                loaded.search(vectors[i], 10) == want for i, want in oracle.items()
            )

        tally = _fuzz(
            root,
            lambda: ShardedVectorIndex.load(root, parallel=False),
            identical,
            seed=32,
        )
        assert tally["silent"] == 0, tally
        assert tally["detected"] >= 2 * TRIALS_PER_FAMILY, tally


def _segment_paths(root):
    return sorted(root.glob("*.seg"))


@pytest.fixture()
def seg_file(lexical_store, tmp_path):
    """A private copy of one pristine segment file to mutate freely."""
    root, _, _ = lexical_store
    source = _segment_paths(root)[0]
    clone = tmp_path / source.name
    clone.write_bytes(source.read_bytes())
    return clone


class TestTargetedSegmentMutations:
    def _decode(self, path):
        from repro.store.segments import decode_postings_segment

        return decode_postings_segment(path.read_bytes())

    def test_wrong_magic_is_corrupt(self, seg_file):
        data = bytearray(seg_file.read_bytes())
        data[:4] = b"NOPE"
        seg_file.write_bytes(bytes(data))
        with pytest.raises(SegmentCorruptError, match="magic"):
            self._decode(seg_file)

    def test_future_segment_version_is_a_version_error(self, seg_file):
        data = bytearray(seg_file.read_bytes())
        # file header: <4s H H I -> version lives at bytes [4, 6)
        data[4:6] = struct.pack("<H", 99)
        seg_file.write_bytes(bytes(data))
        with pytest.raises(SegmentVersionError, match="version 99"):
            self._decode(seg_file)
        # ...and a SegmentVersionError IS a SegmentCorruptError: callers
        # that only catch the broad type still refuse the file.
        with pytest.raises(SegmentCorruptError):
            self._decode(seg_file)

    def test_zero_segment_version_is_corrupt(self, seg_file):
        data = bytearray(seg_file.read_bytes())
        data[4:6] = struct.pack("<H", 0)
        seg_file.write_bytes(bytes(data))
        with pytest.raises(SegmentCorruptError):
            self._decode(seg_file)

    def test_flipped_section_checksum_is_corrupt(self, seg_file):
        data = bytearray(seg_file.read_bytes())
        # first section header follows the 12-byte file header; its crc32
        # is the first 4 bytes of <I Q Q>
        data[12] ^= 0xFF
        seg_file.write_bytes(bytes(data))
        with pytest.raises(SegmentCorruptError, match="checksum"):
            self._decode(seg_file)

    def test_payload_corruption_in_compressed_bytes_is_detected(self, seg_file):
        data = bytearray(seg_file.read_bytes())
        data[-3] ^= 0x10  # inside the last section's zlib stream
        seg_file.write_bytes(bytes(data))
        with pytest.raises(SegmentCorruptError):
            self._decode(seg_file)

    def test_empty_file_is_corrupt_not_a_struct_error(self, seg_file):
        seg_file.write_bytes(b"")
        with pytest.raises(SegmentCorruptError, match="too short"):
            self._decode(seg_file)


class TestTargetedManifestMutations:
    def _mutate(self, lexical_store, tmp_path, edit):
        """Copy the store, apply ``edit`` to the manifest dict, reload."""
        import shutil

        root, catalog, _ = lexical_store
        clone = tmp_path / "clone"
        shutil.copytree(root, clone)
        manifest_path = clone / MANIFEST_NAME
        body = json.loads(manifest_path.read_text())
        edit(body)
        manifest_path.write_text(json.dumps(body))
        return lambda: _load_lexical(clone, catalog)

    def test_future_manifest_version_is_a_version_error(self, lexical_store, tmp_path):
        def bump(body):
            body["version"] = 99

        load = self._mutate(lexical_store, tmp_path, bump)
        with pytest.raises(ManifestVersionError, match="99"):
            load()

    def test_checksum_field_mutation_is_a_manifest_error(self, lexical_store, tmp_path):
        def flip(body):
            body["checksum"] = (body["checksum"] + 1) % (1 << 32)

        load = self._mutate(lexical_store, tmp_path, flip)
        with pytest.raises(ManifestError, match="checksum"):
            load()

    def test_segment_checksum_mutation_fails_that_segment_load(
        self, lexical_store, tmp_path
    ):
        def flip(body):
            ref = body["segments"][0]
            ref["checksum"] = (ref["checksum"] + 1) % (1 << 32)
            # keep the manifest itself self-consistent, so the failure
            # surfaces at SEGMENT verification, not manifest parsing
            from repro.store.manifest import _manifest_body_checksum

            body.pop("checksum")
            body["checksum"] = _manifest_body_checksum(body)

        load = self._mutate(lexical_store, tmp_path, flip)
        with pytest.raises(SegmentCorruptError, match="checksum"):
            load()

    def test_truncated_manifest_is_a_manifest_error(self, lexical_store, tmp_path):
        import shutil

        root, catalog, _ = lexical_store
        clone = tmp_path / "clone"
        shutil.copytree(root, clone)
        path = clone / MANIFEST_NAME
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(ManifestError):
            _load_lexical(clone, catalog)

    def test_missing_manifest_is_a_manifest_error(self, lexical_store, tmp_path):
        import shutil

        root, catalog, _ = lexical_store
        clone = tmp_path / "clone"
        shutil.copytree(root, clone)
        (clone / MANIFEST_NAME).unlink()
        with pytest.raises(ManifestError):
            _load_lexical(clone, catalog)

    def test_missing_segment_file_is_corrupt(self, lexical_store, tmp_path):
        import shutil

        root, catalog, _ = lexical_store
        clone = tmp_path / "clone"
        shutil.copytree(root, clone)
        _segment_paths(clone)[0].unlink()
        with pytest.raises(SegmentCorruptError):
            _load_lexical(clone, catalog)

    def test_swapped_segment_files_are_detected(self, lexical_store, tmp_path):
        """Serving shard B's bytes under shard A's name must not load."""
        import shutil

        root, catalog, _ = lexical_store
        clone = tmp_path / "clone"
        shutil.copytree(root, clone)
        first, second = _segment_paths(clone)[:2]
        a, b = first.read_bytes(), second.read_bytes()
        first.write_bytes(b)
        second.write_bytes(a)
        with pytest.raises(SegmentCorruptError):
            _load_lexical(clone, catalog)
