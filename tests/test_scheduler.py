"""The deterministic micro-batch scheduler: batch formation, priority
lanes, admission control, the virtual service model, and determinism."""

import numpy as np
import pytest

from repro.core import RewriteCache, ServingConfig, ServingPipeline
from repro.core.rewriter import RewriteResult
from repro.core.serving import ServedRewrite, ServedSearch
from repro.online import (
    MicroBatchScheduler,
    ScheduledRequest,
    SchedulerConfig,
    VirtualClock,
)
from repro.search.engine import SearchOutcome


class EchoRewriter:
    """Deterministic fallback: every query rewrites to itself + a suffix."""

    def __init__(self):
        self.calls = 0

    def rewrite(self, query, k=3):
        self.calls += 1
        return [RewriteResult(tokens=(query, "rewritten"), log_prob=-1.0)][:k]


class FakeEngine:
    """Minimal mode-less search engine (two fixed hits per query)."""

    def search(self, query, rewrites=None):
        return SearchOutcome(
            query=query,
            rewrites=list(rewrites or []),
            doc_ids=[1, 2],
            postings_accessed=3,
            tree_nodes=1,
            num_trees=1,
        )


def make_stack(config, *, with_engine=False, cache=None):
    clock = VirtualClock()
    pipeline = ServingPipeline(
        cache,
        EchoRewriter(),
        ServingConfig(max_rewrites=3),
        search_engine=FakeEngine() if with_engine else None,
    )
    batches = []
    scheduler = MicroBatchScheduler(
        pipeline, clock, config, on_batch=batches.append
    )
    return clock, pipeline, scheduler, batches


def submit_at(scheduler, arrivals, *, lane=0, kind="rewrite"):
    return [
        scheduler.submit(
            ScheduledRequest(
                query=f"query {i}", arrival_seconds=t, lane=lane, kind=kind
            )
        )
        for i, t in enumerate(arrivals)
    ]


class TestBatchFormation:
    def test_size_trigger_forms_full_batches(self):
        clock, pipeline, scheduler, batches = make_stack(
            SchedulerConfig(max_batch_size=4, max_wait_seconds=10.0)
        )
        submit_at(scheduler, [0.1 * i for i in range(8)])
        report = scheduler.drain()
        assert report.batches == 2
        assert report.batch_sizes == [4, 4]
        assert report.size_triggered == 2
        assert report.deadline_triggered == 0
        assert report.completed == 8
        assert pipeline.stats.batches == 2
        assert pipeline.stats.admitted == 8
        assert pipeline.stats.shed == 0
        # Size-triggered batches dispatch the instant they fill: the 4th
        # arrival completes the first batch, so its own delay is zero.
        assert report.queue_delays_seconds[3] == 0.0
        assert max(report.queue_delays_seconds) < 10.0

    def test_deadline_trigger_flushes_partial_batch(self):
        clock, _, scheduler, _ = make_stack(
            SchedulerConfig(max_batch_size=100, max_wait_seconds=1.0)
        )
        submit_at(scheduler, [0.0, 0.1, 0.2])
        report = scheduler.drain()
        assert report.batches == 1
        assert report.batch_sizes == [3]
        assert report.deadline_triggered == 1
        # Flushed exactly when the oldest request hit max_wait.
        assert clock.now() == 1.0
        assert report.queue_delays_seconds == [1.0, 0.9, pytest.approx(0.8)]

    def test_deadline_fires_between_arrivals(self):
        clock, _, scheduler, batches = make_stack(
            SchedulerConfig(max_batch_size=100, max_wait_seconds=0.5)
        )
        scheduler.submit(ScheduledRequest(query="early", arrival_seconds=0.0))
        # The next arrival is far in the future; submitting it must first
        # flush the overdue batch at t=0.5, not at t=10.
        scheduler.submit(ScheduledRequest(query="late", arrival_seconds=10.0))
        assert len(batches) == 1
        assert batches[0][0].dispatched_at == 0.5
        assert batches[0][0].queue_delay_seconds == 0.5
        scheduler.drain()

    def test_max_wait_bounds_every_delay_with_idle_worker(self):
        rng = np.random.default_rng(7)
        config = SchedulerConfig(max_batch_size=8, max_wait_seconds=0.5)
        _, _, scheduler, _ = make_stack(config)
        arrivals = np.cumsum(rng.exponential(0.05, size=200))
        for i, t in enumerate(arrivals):
            lane = int(rng.integers(0, config.num_lanes))
            scheduler.submit(
                ScheduledRequest(query=f"q{i}", arrival_seconds=float(t), lane=lane)
            )
        report = scheduler.drain()
        assert report.completed == 200
        assert max(report.queue_delays_seconds) <= config.max_wait_seconds + 1e-12


class TestPriorityLanes:
    def test_high_priority_lane_drains_first(self):
        _, _, scheduler, batches = make_stack(
            SchedulerConfig(max_batch_size=4, max_wait_seconds=5.0, num_lanes=2)
        )
        scheduler.submit(ScheduledRequest(query="low a", arrival_seconds=0.0, lane=1))
        scheduler.submit(ScheduledRequest(query="low b", arrival_seconds=0.1, lane=1))
        scheduler.submit(ScheduledRequest(query="high a", arrival_seconds=0.2, lane=0))
        scheduler.drain()
        order = [c.request.query for c in batches[0]]
        assert order == ["high a", "low a", "low b"]

    def test_full_batch_prefers_high_lane_backlog(self):
        _, _, scheduler, batches = make_stack(
            SchedulerConfig(max_batch_size=2, max_wait_seconds=5.0, num_lanes=2)
        )
        scheduler.submit(ScheduledRequest(query="low a", arrival_seconds=0.0, lane=1))
        scheduler.submit(ScheduledRequest(query="high a", arrival_seconds=0.1, lane=0))
        # Two pending -> size trigger; the batch takes lane 0 first.
        assert [c.request.query for c in batches[0]] == ["high a", "low a"]
        scheduler.drain()


class TestAdmissionControl:
    def test_sheds_arrival_when_queue_full_of_equal_priority(self):
        _, pipeline, scheduler, _ = make_stack(
            SchedulerConfig(
                max_batch_size=100, max_wait_seconds=50.0, max_queue_depth=2
            )
        )
        admitted = submit_at(scheduler, [0.0, 0.1, 0.2])
        assert admitted == [True, True, False]
        report = scheduler.drain()
        assert report.admitted == 2
        assert report.shed == 1
        assert report.shed_by_lane == [1, 0]
        assert report.completed == 2
        assert pipeline.stats.shed == 1
        assert pipeline.stats.admitted == 2

    def test_high_priority_arrival_evicts_lowest_lane_youngest(self):
        _, _, scheduler, batches = make_stack(
            SchedulerConfig(
                max_batch_size=100,
                max_wait_seconds=50.0,
                max_queue_depth=2,
                num_lanes=2,
            )
        )
        scheduler.submit(ScheduledRequest(query="low old", arrival_seconds=0.0, lane=1))
        scheduler.submit(ScheduledRequest(query="low new", arrival_seconds=0.1, lane=1))
        assert scheduler.submit(
            ScheduledRequest(query="high", arrival_seconds=0.2, lane=0)
        )
        report = scheduler.drain()
        served = [c.request.query for c in batches[0]]
        assert served == ["high", "low old"]  # youngest low-lane request shed
        assert report.shed == 1
        assert report.shed_by_lane == [0, 1]

    def test_high_priority_arrival_evicts_low_lane_of_other_kind(self):
        # The queue bound is global across kinds, so the victim search is
        # too: a head search probe must not be shed while strictly
        # lower-priority rewrite requests hold every slot.
        _, _, scheduler, batches = make_stack(
            SchedulerConfig(
                max_batch_size=100,
                max_wait_seconds=50.0,
                max_queue_depth=2,
                num_lanes=2,
            ),
            with_engine=True,
        )
        scheduler.submit(ScheduledRequest(query="tail a", arrival_seconds=0.0, lane=1))
        scheduler.submit(ScheduledRequest(query="tail b", arrival_seconds=0.1, lane=1))
        assert scheduler.submit(
            ScheduledRequest(
                query="head probe", arrival_seconds=0.2, lane=0, kind="search"
            )
        )
        report = scheduler.drain()
        served = [c.request.query for batch in batches for c in batch]
        assert "head probe" in served
        assert "tail b" not in served  # youngest low-priority request shed
        assert report.shed_by_lane == [0, 1]

    def test_low_priority_arrival_never_evicts_high_lane(self):
        _, _, scheduler, batches = make_stack(
            SchedulerConfig(
                max_batch_size=100,
                max_wait_seconds=50.0,
                max_queue_depth=1,
                num_lanes=2,
            )
        )
        scheduler.submit(ScheduledRequest(query="high", arrival_seconds=0.0, lane=0))
        assert not scheduler.submit(
            ScheduledRequest(query="low", arrival_seconds=0.1, lane=1)
        )
        scheduler.drain()
        assert [c.request.query for c in batches[0]] == ["high"]

    def test_peak_queue_depth_tracked(self):
        _, _, scheduler, _ = make_stack(
            SchedulerConfig(max_batch_size=3, max_wait_seconds=50.0)
        )
        submit_at(scheduler, [0.0, 0.1, 0.2, 0.3, 0.4])
        report = scheduler.drain()
        # Depth peaks at 3 right before the size-triggered flush.
        assert report.peak_queue_depth == 3


class TestServiceModel:
    def test_busy_worker_defers_dispatch(self):
        clock, _, scheduler, batches = make_stack(
            SchedulerConfig(
                max_batch_size=1, max_wait_seconds=0.0, batch_cost_seconds=5.0
            )
        )
        scheduler.submit(ScheduledRequest(query="first", arrival_seconds=0.0))
        scheduler.submit(ScheduledRequest(query="second", arrival_seconds=1.0))
        report = scheduler.drain()
        assert batches[0][0].dispatched_at == 0.0
        # The worker is busy until t=5; the second request queues 4s even
        # though its deadline (max_wait=0) fired at its arrival.
        assert batches[1][0].dispatched_at == 5.0
        assert report.queue_delays_seconds == [0.0, 4.0]
        assert clock.now() == 5.0

    def test_per_request_cost_scales_with_batch_size(self):
        clock, _, scheduler, _ = make_stack(
            SchedulerConfig(
                max_batch_size=4,
                max_wait_seconds=1.0,
                batch_cost_seconds=1.0,
                request_cost_seconds=0.5,
            )
        )
        submit_at(scheduler, [0.0, 0.0, 0.0, 0.0])
        scheduler.drain()
        # The 4th simultaneous arrival size-triggers one batch at t=0,
        # which costs 1.0 + 4*0.5 of virtual worker time.
        assert scheduler._busy_until == 3.0


class TestKindsAndRouting:
    def test_search_requests_go_end_to_end(self):
        _, pipeline, scheduler, batches = make_stack(
            SchedulerConfig(max_batch_size=2, max_wait_seconds=1.0),
            with_engine=True,
        )
        scheduler.submit(
            ScheduledRequest(query="red shoe", arrival_seconds=0.0, kind="search")
        )
        scheduler.submit(
            ScheduledRequest(query="blue shoe", arrival_seconds=0.1, kind="search")
        )
        scheduler.drain()
        outcomes = [c.outcome for c in batches[0]]
        assert all(isinstance(o, ServedSearch) for o in outcomes)
        assert outcomes[0].doc_ids == [1, 2]
        assert pipeline.stats.search_requests == 2

    def test_batches_are_homogeneous_per_kind(self):
        _, _, scheduler, batches = make_stack(
            SchedulerConfig(max_batch_size=4, max_wait_seconds=1.0),
            with_engine=True,
        )
        scheduler.submit(ScheduledRequest(query="a", arrival_seconds=0.0))
        scheduler.submit(
            ScheduledRequest(query="b", arrival_seconds=0.1, kind="search")
        )
        scheduler.submit(ScheduledRequest(query="c", arrival_seconds=0.2))
        scheduler.drain()
        for batch in batches:
            kinds = {c.request.kind for c in batch}
            assert len(kinds) == 1
        types = {type(c.outcome) for batch in batches for c in batch}
        assert types == {ServedRewrite, ServedSearch}

    def test_rewrites_flow_through_cache_tier(self):
        cache = RewriteCache()
        cache.put("cached query", ["precomputed"])
        _, pipeline, scheduler, batches = make_stack(
            SchedulerConfig(max_batch_size=2, max_wait_seconds=1.0), cache=cache
        )
        scheduler.submit(ScheduledRequest(query="cached query", arrival_seconds=0.0))
        scheduler.submit(ScheduledRequest(query="tail query", arrival_seconds=0.1))
        scheduler.drain()
        by_query = {c.request.query: c.outcome for c in batches[0]}
        assert by_query["cached query"].source == "cache"
        assert by_query["cached query"].rewrites == ["precomputed"]
        assert by_query["tail query"].source == "model"


class TestDeterminism:
    @staticmethod
    def run_once():
        rng = np.random.default_rng(123)
        config = SchedulerConfig(
            max_batch_size=4,
            max_wait_seconds=0.3,
            max_queue_depth=6,
            batch_cost_seconds=0.2,
            request_cost_seconds=0.01,
        )
        _, pipeline, scheduler, _ = make_stack(config, with_engine=True)
        t = 0.0
        for i in range(120):
            t += float(rng.exponential(0.04))
            scheduler.submit(
                ScheduledRequest(
                    query=f"q{int(rng.integers(0, 20))}",
                    arrival_seconds=t,
                    lane=int(rng.integers(0, 2)),
                    kind="search" if i % 7 == 0 else "rewrite",
                )
            )
        report = scheduler.drain()
        return report.fingerprint(), pipeline.stats.counters()

    def test_same_trace_same_fingerprint_and_counters(self):
        first_fp, first_counters = self.run_once()
        second_fp, second_counters = self.run_once()
        assert first_fp == second_fp
        assert first_counters == second_counters
        # Overload is actually exercised: this trace sheds some requests.
        assert first_fp[1] > 0


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            SchedulerConfig(max_wait_seconds=-1.0)
        with pytest.raises(ValueError):
            SchedulerConfig(max_queue_depth=0)
        with pytest.raises(ValueError):
            SchedulerConfig(num_lanes=0)
        with pytest.raises(ValueError):
            SchedulerConfig(batch_cost_seconds=-0.1)

    def test_rejects_bad_requests(self):
        _, _, scheduler, _ = make_stack(SchedulerConfig(num_lanes=2))
        with pytest.raises(ValueError):
            scheduler.submit(
                ScheduledRequest(query="q", arrival_seconds=0.0, kind="mystery")
            )
        with pytest.raises(ValueError):
            scheduler.submit(
                ScheduledRequest(query="q", arrival_seconds=0.0, lane=2)
            )
        scheduler.submit(ScheduledRequest(query="q", arrival_seconds=5.0))
        with pytest.raises(ValueError):
            scheduler.submit(ScheduledRequest(query="q", arrival_seconds=4.0))
        scheduler.drain()

    def test_empty_drain_is_a_noop(self):
        clock, _, scheduler, _ = make_stack(SchedulerConfig())
        report = scheduler.drain()
        assert report.batches == 0
        assert clock.now() == 0.0
        assert report.p95_queue_delay_seconds() == 0.0
        assert report.mean_batch_size() == 0.0


class TestShedCallback:
    """The ``on_shed`` half of the completion contract.

    Every submitted request triggers exactly one ``on_batch`` completion
    OR one ``on_shed`` notification — the property the gateway's
    future-per-request bridge is built on — and registering callbacks
    must not perturb the deterministic fingerprint."""

    def _stack_with_sheds(self, config):
        clock = VirtualClock()
        pipeline = ServingPipeline(
            None, EchoRewriter(), ServingConfig(max_rewrites=3)
        )
        batches, sheds = [], []
        scheduler = MicroBatchScheduler(
            pipeline, clock, config, on_batch=batches.append, on_shed=sheds.append
        )
        return scheduler, batches, sheds

    def test_arrival_shed_fires_once_with_the_arrival(self):
        scheduler, batches, sheds = self._stack_with_sheds(
            SchedulerConfig(
                max_batch_size=100, max_wait_seconds=50.0, max_queue_depth=2
            )
        )
        requests = [
            ScheduledRequest(query=f"q{i}", arrival_seconds=i * 0.1)
            for i in range(3)
        ]
        for request in requests:
            scheduler.submit(request)
        # the third arrival found the queue full of equal-priority work
        assert sheds == [requests[2]]
        scheduler.drain()
        assert sheds == [requests[2]]  # the drain sheds nothing further
        completed = [c.request for batch in batches for c in batch]
        assert completed == requests[:2]

    def test_eviction_fires_once_with_the_victim(self):
        scheduler, batches, sheds = self._stack_with_sheds(
            SchedulerConfig(
                max_batch_size=100,
                max_wait_seconds=50.0,
                max_queue_depth=2,
                num_lanes=2,
            )
        )
        low_old = ScheduledRequest(query="low old", arrival_seconds=0.0, lane=1)
        low_new = ScheduledRequest(query="low new", arrival_seconds=0.1, lane=1)
        high = ScheduledRequest(query="high", arrival_seconds=0.2, lane=0)
        for request in (low_old, low_new, high):
            scheduler.submit(request)
        assert sheds == [low_new]  # the youngest low-lane request
        scheduler.drain()
        completed = [c.request for batch in batches for c in batch]
        assert completed == [high, low_old]
        assert sheds == [low_new]

    def test_every_submission_completes_or_sheds_exactly_once(self):
        scheduler, batches, sheds = self._stack_with_sheds(
            SchedulerConfig(
                max_batch_size=4,
                max_wait_seconds=0.3,
                max_queue_depth=3,
                num_lanes=2,
            )
        )
        submitted = []
        for i in range(40):  # lanes + timing chosen to force both shed kinds
            request = ScheduledRequest(
                query=f"q{i % 5}", arrival_seconds=i * 0.01, lane=i % 2
            )
            submitted.append(request)
            scheduler.submit(request)
        scheduler.drain()
        completed = [c.request for batch in batches for c in batch]
        outcomes = completed + sheds
        assert len(outcomes) == len(submitted)
        # identity check, not equality: duplicate queries are distinct
        assert {id(r) for r in outcomes} == {id(r) for r in submitted}
        report = scheduler.report
        assert report.completed == len(completed)
        assert report.shed == len(sheds)

    def test_callbacks_do_not_change_the_fingerprint(self):
        def run(with_callbacks):
            clock = VirtualClock()
            pipeline = ServingPipeline(
                None, EchoRewriter(), ServingConfig(max_rewrites=3)
            )
            sink: list = []
            kwargs = (
                {"on_batch": sink.append, "on_shed": sink.append}
                if with_callbacks
                else {}
            )
            scheduler = MicroBatchScheduler(
                pipeline,
                clock,
                SchedulerConfig(
                    max_batch_size=4, max_wait_seconds=0.3, max_queue_depth=3
                ),
                **kwargs,
            )
            for i in range(30):
                scheduler.submit(
                    ScheduledRequest(query=f"q{i % 7}", arrival_seconds=i * 0.05)
                )
            return scheduler.drain().fingerprint()

        assert run(True) == run(False)


class TestWallClockDropIn:
    """A scheduler driven by explicit time is clock-implementation-blind.

    ``WallClock`` without any ``sync()`` calls must behave exactly like
    ``VirtualClock`` — arrivals advance the latch through ``submit`` and
    the fingerprints agree byte for byte."""

    def _run(self, clock):
        pipeline = ServingPipeline(
            None, EchoRewriter(), ServingConfig(max_rewrites=3)
        )
        scheduler = MicroBatchScheduler(
            pipeline,
            clock,
            SchedulerConfig(max_batch_size=8, max_wait_seconds=0.5),
        )
        for i in range(50):
            scheduler.submit(
                ScheduledRequest(query=f"q{i % 9}", arrival_seconds=i * 0.07)
            )
        return scheduler.drain().fingerprint(), pipeline.stats.counters()

    def test_wall_clock_matches_virtual_clock_exactly(self):
        from repro.online import WallClock

        virtual_fp, virtual_counters = self._run(VirtualClock())
        wall_fp, wall_counters = self._run(WallClock())
        assert wall_fp == virtual_fp
        assert wall_counters == virtual_counters
