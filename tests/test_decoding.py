"""Decoding algorithms: greedy, beam, top-n sampling, diverse beam."""

import numpy as np
import pytest

from repro.decoding import (
    beam_search,
    diverse_beam_search,
    greedy_decode,
    log_softmax_np,
    logsumexp_np,
    top_n_sampling,
)
from repro.decoding.hypothesis import Hypothesis
from repro.models import ModelConfig, TransformerNMT
from repro.models.base import DecodeState, Seq2SeqModel


class ScriptedModel(Seq2SeqModel):
    """Deterministic toy model with a hand-set next-token distribution.

    The distribution depends only on the last emitted token, making exact
    decoding outcomes computable by hand.
    """

    def __init__(self, table: dict[int, np.ndarray], vocab_size: int = 6):
        super().__init__(vocab_size, pad_id=0, sos_id=1, eos_id=2)
        self.table = {k: np.asarray(v, dtype=float) for k, v in table.items()}

    def forward(self, src, tgt_in):  # pragma: no cover - not used here
        raise NotImplementedError

    def start(self, src):
        return DecodeState(batch_size=np.atleast_2d(src).shape[0], payload={})

    def step(self, state, last_tokens):
        logits = np.stack([self.table[int(t)] for t in np.asarray(last_tokens)])
        return logits, state

    def reorder_state(self, state, index):
        return DecodeState(batch_size=len(index), payload={})


def _scripted():
    """After SOS: tokens 3 (p~0.6), 4 (p~0.3), 5 (p~0.1).  After any of
    3/4/5: EOS almost surely."""
    big, mid, small = 10.0, 9.3, 8.2
    after_sos = np.array([-99.0, -99.0, -99.0, big, mid, small])
    after_tok = np.array([-99.0, -99.0, 20.0, 0.0, 0.0, 0.0])
    return ScriptedModel({1: after_sos, 3: after_tok, 4: after_tok, 5: after_tok})


@pytest.fixture(scope="module")
def trained_model(tiny_market):
    """A briefly trained real model for integration-grade decoding tests."""
    from repro.data.dataset import BatchIterator
    from repro.training import SeparateTrainer, TrainingConfig

    model = TransformerNMT(
        ModelConfig(
            vocab_size=len(tiny_market.vocab),
            d_model=16,
            num_heads=2,
            d_ff=32,
            encoder_layers=1,
            decoder_layers=1,
            dropout=0.0,
            seed=0,
        )
    )
    SeparateTrainer(
        model, tiny_market.forward_corpus, TrainingConfig(max_steps=80, seed=0)
    ).train(80)
    model.eval()
    return model


SRC = np.array([[4, 5, 2]])


class TestLogspace:
    def test_log_softmax_normalizes(self):
        x = np.random.default_rng(0).normal(size=(3, 5))
        out = log_softmax_np(x)
        np.testing.assert_allclose(np.exp(out).sum(axis=-1), np.ones(3))

    def test_logsumexp_matches_naive_in_safe_range(self):
        x = np.random.default_rng(0).normal(size=(4,))
        np.testing.assert_allclose(
            float(logsumexp_np(x)), np.log(np.exp(x).sum()), atol=1e-12
        )

    def test_logsumexp_no_overflow(self):
        x = np.array([1e4, 1e4])
        assert np.isfinite(logsumexp_np(x))

    def test_logsumexp_axis(self):
        x = np.random.default_rng(0).normal(size=(2, 3))
        out = logsumexp_np(x, axis=1)
        assert out.shape == (2,)


class TestGreedy:
    def test_picks_argmax_path(self):
        hyp = greedy_decode(_scripted(), SRC, max_len=5)
        assert hyp.tokens == (3,)
        assert hyp.finished

    def test_respects_max_len(self):
        # A model that never emits EOS.
        never_eos = ScriptedModel(
            {1: np.array([-99, -99, -99, 5.0, 0, 0]), 3: np.array([-99, -99, -99, 5.0, 0, 0])}
        )
        hyp = greedy_decode(never_eos, SRC, max_len=4)
        assert len(hyp.tokens) == 4
        assert not hyp.finished

    def test_log_prob_accumulates(self):
        hyp = greedy_decode(_scripted(), SRC, max_len=5)
        assert hyp.log_prob < 0.0

    def test_rejects_batch(self):
        with pytest.raises(ValueError):
            greedy_decode(_scripted(), np.array([[1, 2], [3, 4]]))


class TestBeamSearch:
    def test_returns_distinct_sorted_hypotheses(self):
        hyps = beam_search(_scripted(), SRC, beam_size=3, max_len=5)
        assert len(hyps) == 3
        tokens = [h.tokens for h in hyps]
        assert len(set(tokens)) == 3
        scores = [h.log_prob for h in hyps]
        assert scores == sorted(scores, reverse=True)

    def test_best_hypothesis_is_modal_sequence(self):
        hyps = beam_search(_scripted(), SRC, beam_size=3, max_len=5)
        assert hyps[0].tokens == (3,)

    def test_beats_or_matches_greedy(self, trained_model, tiny_market):
        src = np.array([tiny_market.forward_corpus.sources[0]])
        greedy = greedy_decode(trained_model, src, max_len=12)
        beams = beam_search(trained_model, src, beam_size=4, max_len=12)
        assert beams[0].log_prob >= greedy.log_prob - 1e-9

    def test_beam_size_one_is_greedy(self, trained_model, tiny_market):
        src = np.array([tiny_market.forward_corpus.sources[1]])
        greedy = greedy_decode(trained_model, src, max_len=12)
        beam = beam_search(trained_model, src, beam_size=1, max_len=12)
        assert beam[0].tokens == greedy.tokens

    def test_invalid_beam_size(self):
        with pytest.raises(ValueError):
            beam_search(_scripted(), SRC, beam_size=0)


class TestTopNSampling:
    def test_first_tokens_unique(self):
        hyps = top_n_sampling(
            _scripted(), SRC, k=3, n=3, max_len=5, rng=np.random.default_rng(0)
        )
        firsts = [h.tokens[0] for h in hyps]
        assert len(set(firsts)) == 3  # Figure 4 step 1: unique starts

    def test_first_tokens_are_the_top_k(self):
        hyps = top_n_sampling(
            _scripted(), SRC, k=2, n=3, max_len=5, rng=np.random.default_rng(0)
        )
        assert {h.tokens[0] for h in hyps} == {3, 4}

    def test_never_emits_special_tokens(self, trained_model, tiny_market):
        src = np.array([tiny_market.forward_corpus.sources[0]])
        hyps = top_n_sampling(
            trained_model, src, k=3, n=5, max_len=10, rng=np.random.default_rng(1)
        )
        vocab = tiny_market.vocab
        for hyp in hyps:
            assert vocab.pad_id not in hyp.tokens
            assert vocab.sos_id not in hyp.tokens
            assert vocab.eos_id not in hyp.tokens

    def test_seeded_reproducibility(self, trained_model, tiny_market):
        src = np.array([tiny_market.forward_corpus.sources[0]])
        a = top_n_sampling(trained_model, src, k=3, n=5, max_len=10, rng=np.random.default_rng(7))
        b = top_n_sampling(trained_model, src, k=3, n=5, max_len=10, rng=np.random.default_rng(7))
        assert [h.tokens for h in a] == [h.tokens for h in b]

    def test_more_diverse_than_beam(self, trained_model, tiny_market):
        """The paper's Section III-F claim, averaged over queries."""
        from repro.text import levenshtein

        def diversity(hyps):
            seqs = [h.tokens for h in hyps if h.tokens]
            if len(seqs) < 2:
                return 0.0
            return float(
                np.mean(
                    [
                        levenshtein(seqs[i], seqs[j])
                        for i in range(len(seqs))
                        for j in range(i + 1, len(seqs))
                    ]
                )
            )

        rng = np.random.default_rng(0)
        beam_div, topn_div = [], []
        for i in range(6):
            src = np.array([tiny_market.forward_corpus.sources[i]])
            beam_div.append(diversity(beam_search(trained_model, src, beam_size=3, max_len=10)))
            topn_div.append(
                diversity(top_n_sampling(trained_model, src, k=3, n=6, max_len=10, rng=rng))
            )
        assert np.mean(topn_div) >= np.mean(beam_div)

    def test_forbid_tokens(self):
        hyps = top_n_sampling(
            _scripted(), SRC, k=2, n=3, max_len=5,
            rng=np.random.default_rng(0), forbid_tokens=(3,),
        )
        for hyp in hyps:
            assert 3 not in hyp.tokens

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            top_n_sampling(_scripted(), SRC, k=0, n=3)
        with pytest.raises(ValueError):
            top_n_sampling(_scripted(), SRC, k=2, n=0)


class TestDiverseBeam:
    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            diverse_beam_search(_scripted(), SRC, beam_size=5, num_groups=2)

    def test_returns_unique_hypotheses(self, trained_model, tiny_market):
        src = np.array([tiny_market.forward_corpus.sources[2]])
        hyps = diverse_beam_search(trained_model, src, beam_size=4, num_groups=2, max_len=10)
        tokens = [h.tokens for h in hyps]
        assert len(tokens) == len(set(tokens))

    def test_single_group_equals_beam(self, trained_model, tiny_market):
        src = np.array([tiny_market.forward_corpus.sources[3]])
        plain = beam_search(trained_model, src, beam_size=3, max_len=10)
        grouped = diverse_beam_search(trained_model, src, beam_size=3, num_groups=1, max_len=10)
        assert grouped[0].tokens == plain[0].tokens

    def test_diversity_increases_with_strength(self, trained_model, tiny_market):
        from repro.text import levenshtein

        def diversity(hyps):
            seqs = [h.tokens for h in hyps if h.tokens]
            if len(seqs) < 2:
                return 0.0
            return float(np.mean([
                levenshtein(seqs[i], seqs[j])
                for i in range(len(seqs)) for j in range(i + 1, len(seqs))
            ]))

        values = {}
        for strength in (0.0, 2.0):
            total = 0.0
            for i in range(4):
                src = np.array([tiny_market.forward_corpus.sources[i]])
                hyps = diverse_beam_search(
                    trained_model, src, beam_size=4, num_groups=2,
                    diversity_strength=strength, max_len=10,
                )
                total += diversity(hyps)
            values[strength] = total
        assert values[2.0] >= values[0.0]


class TestHypothesis:
    def test_len_and_score(self):
        hyp = Hypothesis(tokens=(3, 4), log_prob=-6.0)
        assert len(hyp) == 2
        assert hyp.score == pytest.approx(-2.0)

    def test_empty_score_safe(self):
        hyp = Hypothesis(tokens=(), log_prob=-1.0)
        assert np.isfinite(hyp.score)
