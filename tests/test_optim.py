"""Optimizers, schedules and gradient clipping."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import Adam, ConstantSchedule, NoamSchedule, SGD, clip_grad_norm


def _quadratic_params(start=5.0):
    return Parameter(np.array([start]))


def _minimize(optimizer, param, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        param.grad = 2.0 * param.data  # d/dx x^2
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        p = _quadratic_params()
        assert abs(_minimize(SGD([p], lr=0.1), p)) < 1e-6

    def test_momentum_converges(self):
        p = _quadratic_params()
        assert abs(_minimize(SGD([p], lr=0.05, momentum=0.9), p)) < 1e-4

    def test_skips_missing_grad(self):
        p = _quadratic_params()
        SGD([p], lr=0.1).step()  # no grad set
        np.testing.assert_allclose(p.data, [5.0])

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = _quadratic_params()
        assert abs(_minimize(Adam([p], lr=0.1), p)) < 1e-3

    def test_first_step_size_is_lr(self):
        """With bias correction, |Δ| of the first step ≈ lr regardless of
        gradient magnitude."""
        for scale in (1e-3, 1.0, 1e3):
            p = Parameter(np.array([0.0]))
            opt = Adam([p], lr=0.01)
            p.grad = np.array([scale])
            opt.step()
            np.testing.assert_allclose(abs(p.data[0]), 0.01, rtol=1e-4)

    def test_handles_multiple_params(self):
        a, b = Parameter(np.array([3.0])), Parameter(np.array([-2.0]))
        opt = Adam([a, b], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            a.grad = 2 * a.data
            b.grad = 2 * b.data
            opt.step()
        assert abs(float(a.data[0])) < 1e-2
        assert abs(float(b.data[0])) < 1e-2


class TestClipGradNorm:
    def test_clips_when_above(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 3.0)  # norm 6
        norm = clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(norm, 6.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0, rtol=1e-9)

    def test_noop_when_below(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        before = p.grad.copy()
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, before)

    def test_ignores_missing_grads(self):
        p = Parameter(np.zeros(4))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0


class TestSchedules:
    def test_constant(self):
        sched = ConstantSchedule(0.5)
        assert sched.rate(1) == sched.rate(1000) == 0.5

    def test_noam_warmup_rises_then_decays(self):
        sched = NoamSchedule(d_model=64, warmup_steps=100)
        rates = [sched.rate(s) for s in (1, 50, 100, 200, 1000)]
        assert rates[0] < rates[1] < rates[2]  # rising during warmup
        assert rates[2] > rates[3] > rates[4]  # decaying after

    def test_noam_peak_at_warmup(self):
        sched = NoamSchedule(d_model=64, warmup_steps=100)
        peak = sched.rate(100)
        assert peak >= sched.rate(99)
        assert peak >= sched.rate(101)

    def test_noam_step_zero_safe(self):
        sched = NoamSchedule(d_model=64, warmup_steps=100)
        assert np.isfinite(sched.rate(0))

    def test_noam_invalid_warmup(self):
        with pytest.raises(ValueError):
            NoamSchedule(d_model=64, warmup_steps=0)

    def test_noam_factor_scales(self):
        base = NoamSchedule(d_model=64, warmup_steps=100, factor=1.0)
        doubled = NoamSchedule(d_model=64, warmup_steps=100, factor=2.0)
        assert doubled.rate(50) == pytest.approx(2 * base.rate(50))
