"""Tokenization, vocabulary, n-grams, edit distance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.text import (
    EOS,
    PAD,
    SOS,
    UNK,
    Vocabulary,
    detokenize,
    levenshtein,
    ngram_f1,
    ngram_multiset,
    ngram_precision_recall,
    ngrams,
    normalize,
    tokenize,
)


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Senior PHONE") == ["senior", "phone"]

    def test_strips_punctuation(self):
        assert tokenize("phone, for grandpa!") == ["phone", "for", "grandpa"]

    def test_keeps_hyphens_and_specs(self):
        assert tokenize("big-button 5g 1.5kg") == ["big-button", "5g", "1.5kg"]

    def test_squeezes_whitespace(self):
        assert tokenize("  a   b  ") == ["a", "b"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("!!!") == []

    def test_detokenize_inverse(self):
        tokens = ["senior", "mobile", "phone"]
        assert tokenize(detokenize(tokens)) == tokens

    def test_normalize_idempotent(self):
        text = "Senior, PHONE  for Grandpa!"
        assert normalize(normalize(text)) == normalize(text)


class TestVocabulary:
    def test_specials_reserved(self):
        vocab = Vocabulary()
        assert vocab.token_to_id(PAD) == 0
        assert vocab.token_to_id(SOS) == 1
        assert vocab.token_to_id(EOS) == 2
        assert vocab.token_to_id(UNK) == 3
        assert len(vocab) == 4

    def test_build_frequency_order(self):
        vocab = Vocabulary.build([["b", "a", "a"], ["a", "b", "c"]])
        # a(3) before b(2) before c(1)
        assert vocab.token_to_id("a") < vocab.token_to_id("b") < vocab.token_to_id("c")

    def test_build_min_freq(self):
        vocab = Vocabulary.build([["a", "a", "b"]], min_freq=2)
        assert "a" in vocab
        assert "b" not in vocab

    def test_build_max_size(self):
        vocab = Vocabulary.build([["a", "a", "b", "c"]], max_size=5)
        assert len(vocab) == 5  # 4 specials + 1

    def test_unknown_encodes_to_unk(self):
        vocab = Vocabulary(["known"])
        assert vocab.encode(["mystery"], add_eos=False) == [vocab.unk_id]

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary(["senior", "phone"])
        ids = vocab.encode(["senior", "phone"], add_sos=True, add_eos=True)
        assert ids[0] == vocab.sos_id
        assert ids[-1] == vocab.eos_id
        assert vocab.decode(ids) == ["senior", "phone"]

    def test_decode_stops_at_eos(self):
        vocab = Vocabulary(["a", "b"])
        ids = [vocab.token_to_id("a"), vocab.eos_id, vocab.token_to_id("b")]
        assert vocab.decode(ids) == ["a"]

    def test_decode_keeps_specials_when_asked(self):
        vocab = Vocabulary(["a"])
        ids = [vocab.sos_id, vocab.token_to_id("a"), vocab.eos_id]
        assert vocab.decode(ids, strip_special=False) == [SOS, "a", EOS]

    def test_id_out_of_range_raises(self):
        with pytest.raises(IndexError):
            Vocabulary().id_to_token(99)

    def test_duplicate_tokens_collapse(self):
        vocab = Vocabulary(["x", "x"])
        assert len(vocab) == 5

    def test_tokens_listing(self):
        vocab = Vocabulary(["z"])
        assert vocab.tokens() == [PAD, SOS, EOS, UNK, "z"]


class TestNgrams:
    def test_unigrams(self):
        assert ngrams(["a", "b"], 1) == [("a",), ("b",)]

    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_n_longer_than_sequence(self):
        assert ngrams(["a"], 2) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_multiset_counts_duplicates(self):
        bag = ngram_multiset(["a", "a", "a"], orders=(1,))
        assert bag[("a",)] == 3

    def test_identical_queries_f1_is_one(self):
        tokens = ["red", "men", "sock"]
        assert ngram_f1(tokens, tokens) == pytest.approx(1.0)

    def test_disjoint_queries_f1_is_zero(self):
        assert ngram_f1(["a", "b"], ["c", "d"]) == 0.0

    def test_precision_recall_direction(self):
        # rewritten ⊂ original: precision 1, recall < 1
        p, r = ngram_precision_recall(["red", "sock"], ["red", "men", "sock"])
        assert p > r

    def test_paper_style_f1(self):
        """Single-word substitution (rule-based style) keeps F1 high."""
        f1_rule = ngram_f1(["senior", "phone"], ["elderly", "phone"])
        f1_model = ngram_f1(["apple", "official"], ["cellphone", "for", "grandpa"])
        assert f1_rule > f1_model


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3
        assert levenshtein("", "") == 0

    def test_substitution(self):
        assert levenshtein("kitten", "sitten") == 1

    def test_classic(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_token_level(self):
        assert levenshtein(["senior", "phone"], ["grandpa", "phone"]) == 1

    @settings(max_examples=50, deadline=None)
    @given(st.text(max_size=8), st.text(max_size=8))
    def test_property_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @settings(max_examples=50, deadline=None)
    @given(st.text(max_size=6), st.text(max_size=6), st.text(max_size=6))
    def test_property_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @settings(max_examples=50, deadline=None)
    @given(st.text(max_size=8), st.text(max_size=8))
    def test_property_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["red", "men", "sock", "shoe", "big"]), min_size=1, max_size=6))
def test_property_f1_self_identity(tokens):
    assert ngram_f1(tokens, tokens) == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.sampled_from("abcde"), min_size=1, max_size=5),
    st.lists(st.sampled_from("abcde"), min_size=1, max_size=5),
)
def test_property_f1_symmetric_range(a, b):
    value = ngram_f1(a, b)
    assert 0.0 <= value <= 1.0
    assert value == pytest.approx(ngram_f1(b, a))
