"""Equivalence and determinism guarantees across retrieval engines.

Two families of invariants the serving tier leans on:

* **Shard-count transparency** — a :class:`ShardedSearchEngine` at 1, 2,
  4, or 8 shards returns *identical* top-k (doc ids AND scores) to a
  plain single-index :class:`SearchEngine` over the same corpus, and
  keeps doing so while products are added and removed mid-stream.  This
  is the "ranking against global statistics" contract: sharding is a
  deployment choice, never a relevance change.
* **Fusion determinism** — hybrid retrieval (RRF and weighted-score
  fusion) is a pure function of the corpus and the query: repeated
  searches, and searches through independently built engines, produce
  identical outcomes in every mode.
* **Backend transparency** — a :class:`~repro.cluster.ProcessBackend`
  (one worker process per shard, RPC over pipes) returns *identical*
  ``(doc_id, score)`` lists to the in-process thread backend at every
  shard count, for lexical, vector, and hybrid retrieval, under
  interleaved churn.  Both backends execute the same
  :mod:`repro.cluster.ops` handlers, and these tests pin that the pipe
  round trip (pickled trees, rankers, pruned statistics, float scores)
  never perturbs a single bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.catalog import CATEGORY_SPECS, CatalogConfig, CatalogGenerator
from repro.data.clicklog import ClickLogConfig
from repro.data.marketplace import MarketplaceConfig, generate_marketplace
from repro.embedding import DualEncoder, DualEncoderConfig
from repro.search import (
    HybridConfig,
    HybridSearchEngine,
    SearchConfig,
    SearchEngine,
    ShardedSearchEngine,
    ShardedVectorIndex,
)

TOP_K = 15
CHURN_STEPS = 40


def reference_add(engine: SearchEngine, product) -> None:
    """Catalog + index add for the single-index engine (no helper there)."""
    engine.catalog.add_product(product)
    engine.index.add_document(product.product_id, product.title_tokens)


def reference_remove(engine: SearchEngine, product_id: int) -> None:
    engine.index.remove_document(product_id)
    engine.catalog.remove_product(product_id)


def sample_query(rng: np.random.Generator, products) -> str:
    """A 1-3 token query drawn from a live product title (plus, sometimes,
    a token the corpus may not contain at all)."""
    title = list(products[int(rng.integers(0, len(products)))].title_tokens)
    count = int(rng.integers(1, min(3, len(title)) + 1))
    picks = [title[int(i)] for i in rng.choice(len(title), size=count, replace=False)]
    if rng.random() < 0.2:
        picks.append("xyzzy")  # out-of-vocabulary term
    return " ".join(picks)


@pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
@pytest.mark.parametrize("ranker", ["bm25", "overlap"])
def test_sharded_identical_to_single_engine_under_churn(num_shards, ranker):
    generator = CatalogGenerator(CatalogConfig(products_per_category=8, seed=3))
    config = SearchConfig(max_candidates=TOP_K, ranker=ranker)
    reference = SearchEngine(generator.generate(), config)
    sharded = ShardedSearchEngine(
        generator.generate(), config, num_shards=num_shards, parallel=False
    )

    rng = np.random.default_rng(100 + num_shards)
    categories = sorted(CATEGORY_SPECS)
    next_id = reference.catalog.next_product_id()
    compared = 0
    try:
        for step in range(CHURN_STEPS):
            op = rng.random()
            live = reference.catalog.products
            if op < 0.3:
                # List the SAME sampled product in both engines.
                category = str(rng.choice(categories))
                product = generator.sample_product(category, next_id, rng)
                next_id += 1
                reference_add(reference, product)
                sharded.add_product(product)
            elif op < 0.5 and len(live) > 5:
                victim = int(
                    sorted(p.product_id for p in live)[
                        int(rng.integers(0, len(live)))
                    ]
                )
                reference_remove(reference, victim)
                sharded.remove_product(victim)
            else:
                query = sample_query(rng, live)
                rewrites = (
                    [sample_query(rng, live)] if rng.random() < 0.5 else []
                )
                expected = reference.search(query, rewrites)
                got = sharded.search(query, rewrites)
                assert got.doc_ids == expected.doc_ids, (
                    f"step {step}: shard fan-out changed the top-k for "
                    f"{query!r} + {rewrites!r}"
                )
                # Scores must agree bit for bit: every shard ranks against
                # the same global statistics a single index would use.
                assert got.scores == expected.scores
                compared += 1
        assert compared >= CHURN_STEPS // 4  # the mix actually searched
    finally:
        sharded.close()


def test_sharded_shard_sizes_follow_churn():
    generator = CatalogGenerator(CatalogConfig(products_per_category=4, seed=9))
    engine = ShardedSearchEngine(
        generator.generate(), SearchConfig(max_candidates=5), num_shards=4,
        parallel=False,
    )
    try:
        before = len(engine.index)
        product = generator.sample_product(
            sorted(CATEGORY_SPECS)[0],
            engine.catalog.next_product_id(),
            np.random.default_rng(0),
        )
        engine.add_product(product)
        assert len(engine.index) == before + 1
        engine.remove_product(product.product_id)
        assert len(engine.index) == before
    finally:
        engine.close()


class TestProcessBackendEquivalence:
    """Process shard workers vs in-process threads: identical, always.

    Each test saves a seed corpus to a segment store, restores it twice
    — once per backend — and drives both restored engines through the
    same interleaved churn + search stream, asserting every ``(doc_id,
    score)`` list matches bit for bit.
    """

    CHURN_STEPS = 24

    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("ranker", ["bm25", "overlap"])
    def test_lexical_process_equals_inproc_under_churn(
        self, tmp_path, num_shards, ranker
    ):
        generator = CatalogGenerator(CatalogConfig(products_per_category=4, seed=11))
        config = SearchConfig(max_candidates=TOP_K, ranker=ranker)
        seed_engine = ShardedSearchEngine(
            generator.generate(), config, num_shards=num_shards, parallel=False
        )
        seed_engine.save(tmp_path / "store")
        seed_engine.close()
        inproc = ShardedSearchEngine.load(
            generator.generate(), tmp_path / "store", config, parallel=False
        )
        process = ShardedSearchEngine.load(
            generator.generate(), tmp_path / "store", config, backend="process"
        )

        rng = np.random.default_rng(200 + num_shards)
        categories = sorted(CATEGORY_SPECS)
        next_id = inproc.catalog.next_product_id()
        compared = 0
        try:
            for step in range(self.CHURN_STEPS):
                op = rng.random()
                live = inproc.catalog.products
                if op < 0.3:
                    category = str(rng.choice(categories))
                    product = generator.sample_product(category, next_id, rng)
                    next_id += 1
                    inproc.add_product(product)
                    process.add_product(product)
                elif op < 0.5 and len(live) > 5:
                    victim = int(
                        sorted(p.product_id for p in live)[
                            int(rng.integers(0, len(live)))
                        ]
                    )
                    inproc.remove_product(victim)
                    process.remove_product(victim)
                else:
                    query = sample_query(rng, live)
                    rewrites = (
                        [sample_query(rng, live)] if rng.random() < 0.5 else []
                    )
                    expected = inproc.search(query, rewrites)
                    got = process.search(query, rewrites)
                    assert got.doc_ids == expected.doc_ids, (
                        f"step {step}: the process backend changed the top-k "
                        f"for {query!r} + {rewrites!r}"
                    )
                    assert got.scores == expected.scores
                    compared += 1
            assert compared >= self.CHURN_STEPS // 4
        finally:
            inproc.close()
            process.close()

    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    def test_vector_process_equals_inproc_under_churn(self, tmp_path, num_shards):
        rng = np.random.default_rng(40 + num_shards)
        dim = 12
        doc_ids = list(range(48))
        vectors = rng.normal(size=(48, dim))
        built = ShardedVectorIndex(
            dim, num_shards=num_shards, num_clusters=4, parallel=False, seed=0
        )
        built.fit(doc_ids, vectors)
        built.save(tmp_path / "store")
        built.close()
        inproc = ShardedVectorIndex.load(tmp_path / "store", parallel=False)
        process = ShardedVectorIndex.load(tmp_path / "store", backend="process")

        live = list(doc_ids)
        next_id = len(doc_ids)
        compared = 0
        try:
            for step in range(self.CHURN_STEPS):
                op = rng.random()
                if op < 0.3:
                    vector = rng.normal(size=dim)
                    inproc.add_document(next_id, vector)
                    process.add_document(next_id, vector)
                    live.append(next_id)
                    next_id += 1
                elif op < 0.5 and len(live) > 8:
                    victim = live.pop(int(rng.integers(0, len(live))))
                    inproc.remove_document(victim)
                    process.remove_document(victim)
                else:
                    query = rng.normal(size=dim)
                    expected = inproc.search(query, k=10)
                    got = process.search(query, k=10)
                    assert got == expected, (
                        f"step {step}: the process backend changed the ANN top-k"
                    )
                    compared += 1
            assert compared >= self.CHURN_STEPS // 4
            assert len(inproc) == len(process) == len(live)
        finally:
            inproc.close()
            process.close()

    def test_hybrid_process_equals_inproc_under_churn(self, tmp_path):
        def market():
            return generate_marketplace(
                MarketplaceConfig(
                    catalog=CatalogConfig(products_per_category=5),
                    clicks=ClickLogConfig(num_sessions=200, intent_pool_size=40),
                    seed=13,
                )
            )

        def engines():
            """Two identical markets → two engines over private catalogs."""
            for m in (market(), market()):
                yield m, DualEncoder(m.vocab, DualEncoderConfig(seed=0))

        (seed_market, seed_encoder), (twin_market, twin_encoder) = engines()
        config = SearchConfig(max_candidates=TOP_K, ranker="bm25")
        hybrid_config = HybridConfig(fusion="rrf", alpha=0.6)
        seed_engine = HybridSearchEngine(
            seed_market.catalog,
            seed_encoder,
            config,
            hybrid_config,
            num_shards=2,
            num_clusters=4,
            parallel=False,
            seed=0,
        )
        seed_engine.save(tmp_path / "store")
        seed_engine.close()
        inproc = HybridSearchEngine.load(
            tmp_path / "store",
            seed_market.catalog,
            seed_encoder,
            config,
            hybrid_config,
            parallel=False,
        )
        process = HybridSearchEngine.load(
            tmp_path / "store",
            twin_market.catalog,
            twin_encoder,
            config,
            hybrid_config,
            backend="process",
        )

        generator = CatalogGenerator(seed_market.config.catalog)
        rng = np.random.default_rng(77)
        categories = sorted(CATEGORY_SPECS)
        next_id = seed_market.catalog.next_product_id()
        compared = 0
        try:
            for step in range(self.CHURN_STEPS):
                op = rng.random()
                live = inproc.catalog.products
                if op < 0.25:
                    category = str(rng.choice(categories))
                    product = generator.sample_product(category, next_id, rng)
                    next_id += 1
                    inproc.add_product(product)
                    process.add_product(product)
                elif op < 0.4 and len(live) > 5:
                    victim = int(
                        sorted(p.product_id for p in live)[
                            int(rng.integers(0, len(live)))
                        ]
                    )
                    inproc.remove_product(victim)
                    process.remove_product(victim)
                else:
                    query = sample_query(rng, live)
                    for mode in ("lexical", "semantic", "hybrid"):
                        expected = inproc.search(query, mode=mode)
                        got = process.search(query, mode=mode)
                        assert got.doc_ids == expected.doc_ids, (
                            f"step {step}: process backend changed {mode} "
                            f"results for {query!r}"
                        )
                        assert got.scores == expected.scores
                    compared += 1
            assert compared >= self.CHURN_STEPS // 4
        finally:
            inproc.close()
            process.close()


class TestHybridFusionDeterminism:
    @staticmethod
    def build_engine(market, fusion: str) -> HybridSearchEngine:
        return HybridSearchEngine(
            market.catalog,
            DualEncoder(market.vocab, DualEncoderConfig(seed=0)),
            SearchConfig(max_candidates=10, ranker="bm25"),
            HybridConfig(fusion=fusion, alpha=0.6),
            num_shards=2,
            num_clusters=4,
            parallel=False,
            seed=0,
        )

    @staticmethod
    def queries(market) -> list[str]:
        records = sorted(
            market.click_log.queries.values(), key=lambda r: (-r.total_clicks, r.text)
        )
        return [r.text for r in records[:6]]

    @pytest.mark.parametrize("fusion", ["rrf", "weighted"])
    def test_repeated_runs_identical(self, tiny_market, fusion):
        engine = self.build_engine(tiny_market, fusion)
        try:
            for query in self.queries(tiny_market):
                for mode in ("lexical", "semantic", "hybrid"):
                    first = engine.search(query, mode=mode)
                    second = engine.search(query, mode=mode)
                    assert first.doc_ids == second.doc_ids
                    assert first.scores == second.scores
                    assert first.mode == second.mode == mode
        finally:
            engine.close()

    @pytest.mark.parametrize("fusion", ["rrf", "weighted"])
    def test_independent_builds_identical(self, tiny_market, fusion):
        # Determinism must survive a full rebuild: encoder init, IVF
        # clustering, and fusion all run from seeds, not global state.
        first_engine = self.build_engine(tiny_market, fusion)
        second_engine = self.build_engine(tiny_market, fusion)
        try:
            for query in self.queries(tiny_market):
                first = first_engine.search(query, mode="hybrid")
                second = second_engine.search(query, mode="hybrid")
                assert first.doc_ids == second.doc_ids
                assert first.scores == second.scores
        finally:
            first_engine.close()
            second_engine.close()
