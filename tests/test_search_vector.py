"""IVF vector index: clustering, probe search, churn, sharded fan-out."""

import numpy as np
import pytest

from repro.search import (
    ShardedVectorIndex,
    VectorIndex,
    spherical_kmeans,
)


def unit_rows(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    rows = rng.normal(size=(n, dim))
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


def assert_same_ranking(got, expected):
    """Same doc order; scores equal up to BLAS summation-order ulps."""
    assert [doc for _, doc in got] == [doc for _, doc in expected]
    np.testing.assert_allclose(
        [score for score, _ in got], [score for score, _ in expected], rtol=1e-12
    )


class TestSphericalKmeans:
    def test_shape_and_unit_norm(self):
        vectors = unit_rows(200, 8)
        centroids = spherical_kmeans(vectors, 10, np.random.default_rng(0))
        assert centroids.shape == (10, 8)
        np.testing.assert_allclose(np.linalg.norm(centroids, axis=1), 1.0, atol=1e-9)

    def test_deterministic_for_seed(self):
        vectors = unit_rows(100, 4)
        a = spherical_kmeans(vectors, 5, np.random.default_rng(7))
        b = spherical_kmeans(vectors, 5, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_fewer_vectors_than_clusters(self):
        vectors = unit_rows(3, 4)
        centroids = spherical_kmeans(vectors, 10, np.random.default_rng(0))
        assert centroids.shape == (3, 4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            spherical_kmeans(np.empty((0, 4)), 2, np.random.default_rng(0))

    def test_separates_obvious_clusters(self):
        """Two antipodal blobs must get centroids near each pole."""
        rng = np.random.default_rng(1)
        pole = np.zeros(6)
        pole[0] = 1.0
        a = pole + 0.05 * rng.normal(size=(50, 6))
        b = -pole + 0.05 * rng.normal(size=(50, 6))
        vectors = np.concatenate([a, b])
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        centroids = spherical_kmeans(vectors, 2, np.random.default_rng(0))
        first = centroids @ pole
        assert (first > 0.9).any() and (first < -0.9).any()


class TestVectorIndex:
    def build(self, n=300, dim=8, clusters=8, seed=0):
        vectors = unit_rows(n, dim, seed)
        index = VectorIndex(dim, num_clusters=clusters, nprobe=4, seed=seed)
        index.fit(list(range(n)), vectors)
        return index, vectors

    def test_fit_buckets_everything(self):
        index, _ = self.build()
        assert len(index) == 300
        assert index.trained
        assert sum(index.cell_sizes()) == 300

    def test_full_probe_equals_brute_force(self):
        index, vectors = self.build()
        query = vectors[17]
        exact = index.brute_force(query, 10)
        assert_same_ranking(
            index.search(query, 10, nprobe=len(index.cell_sizes())), exact
        )
        # and the document itself is its own nearest neighbour
        assert exact[0][1] == 17

    def test_probe_search_scores_are_exact(self):
        """Approximation is WHICH cells get probed; scores are exact dots."""
        index, vectors = self.build()
        query = unit_rows(1, 8, seed=9)[0]
        for score, doc_id in index.search(query, 5, nprobe=2):
            assert score == pytest.approx(float(vectors[doc_id] @ query))

    def test_untrained_index_is_exact(self):
        vectors = unit_rows(50, 4)
        index = VectorIndex(4, num_clusters=8)
        for i, vec in enumerate(vectors):
            index.add_document(i, vec)
        assert not index.trained
        query = vectors[3]
        assert index.search(query, 5) == index.brute_force(query, 5)

    def test_add_after_fit_is_searchable(self):
        index, _ = self.build()
        fresh = unit_rows(1, 8, seed=42)[0]
        index.add_document(1000, fresh)
        assert 1000 in index
        assert index.search(fresh, 1)[0][1] == 1000

    def test_removed_document_never_surfaces(self):
        index, vectors = self.build()
        index.remove_document(17)
        assert 17 not in index
        hits = index.search(vectors[17], 300, nprobe=len(index.cell_sizes()))
        assert 17 not in [doc_id for _, doc_id in hits]
        assert len(index) == 299

    def test_duplicate_and_missing_ids_raise(self):
        index, vectors = self.build()
        with pytest.raises(ValueError):
            index.add_document(17, vectors[0])
        with pytest.raises(KeyError):
            index.remove_document(99999)

    def test_dim_mismatch_raises(self):
        index = VectorIndex(4)
        with pytest.raises(ValueError):
            index.add_document(0, np.zeros(5))

    def test_ties_break_by_doc_id(self):
        index = VectorIndex(2, num_clusters=1)
        vec = np.array([1.0, 0.0])
        for doc_id in (5, 3, 9):
            index.add_document(doc_id, vec)
        assert [d for _, d in index.search(vec, 3)] == [3, 5, 9]

    def test_empty_and_zero_k(self):
        index = VectorIndex(4)
        assert index.search(np.zeros(4), 5) == []
        index.add_document(0, unit_rows(1, 4)[0])
        assert index.search(np.zeros(4), 0) == []

    def test_nonpositive_nprobe_rejected(self):
        """Per-call overrides get the same validation as the constructor:
        nprobe=0 would silently probe nothing, negative values would
        select 'all but the last n' cells via argpartition."""
        index, vectors = self.build()
        for nprobe in (0, -2):
            with pytest.raises(ValueError):
                index.search(vectors[0], 5, nprobe=nprobe)

    def test_fit_error_names_repeated_ids(self):
        index = VectorIndex(4)
        with pytest.raises(ValueError, match=r"\[7\]"):
            index.fit([7, 7], unit_rows(2, 4))

    def test_index_never_aliases_caller_buffers(self):
        """Mutating a buffer after add/fit must not corrupt the index."""
        index = VectorIndex(4, num_clusters=2)
        buffer = unit_rows(1, 4)[0]
        index.add_document(0, buffer)
        buffer[:] = 0.0
        assert np.linalg.norm(index.document(0)) == pytest.approx(1.0)

        matrix = unit_rows(10, 4, seed=3)
        index.fit(list(range(1, 11)), matrix)
        matrix[:] = 0.0
        index.fit()  # a re-fit re-buckets from stored vectors, not the buffer
        query = unit_rows(1, 4, seed=4)[0]
        assert all(score != 0.0 for score, _ in index.brute_force(query, 5))

    def test_refit_rebalances_incremental_adds(self):
        vectors = unit_rows(100, 8)
        index = VectorIndex(8, num_clusters=4)
        for i, vec in enumerate(vectors):
            index.add_document(i, vec)
        index.fit()
        assert index.trained
        assert len(index) == 100
        query = vectors[0]
        assert_same_ranking(
            index.search(query, 5, nprobe=4), index.brute_force(query, 5)
        )


class TestShardedVectorIndex:
    def build(self, n=400, dim=8, shards=4):
        vectors = unit_rows(n, dim, seed=2)
        index = ShardedVectorIndex(
            dim, num_shards=shards, num_clusters=4, nprobe=2, parallel=False
        )
        index.fit(list(range(n)), vectors)
        return index, vectors

    def test_routing_and_sizes(self):
        index, _ = self.build()
        assert len(index) == 400
        assert index.shard_sizes() == [100, 100, 100, 100]
        assert 3 in index and 400 not in index

    def test_full_probe_merge_equals_global_brute_force(self):
        """Exact per-shard search + merge_topk == one global exact search."""
        index, vectors = self.build()
        flat = VectorIndex(8, num_clusters=1)
        for i, vec in enumerate(vectors):
            flat.add_document(i, vec)
        query = unit_rows(1, 8, seed=5)[0]
        assert_same_ranking(index.search(query, 10, nprobe=100), flat.brute_force(query, 10))

    def test_parallel_matches_serial(self):
        index, vectors = self.build()
        with ShardedVectorIndex(
            8, num_shards=4, num_clusters=4, nprobe=2, parallel=True
        ) as parallel:
            parallel.fit(list(range(400)), vectors)
            query = vectors[11]
            assert parallel.search(query, 10) == index.search(query, 10)

    def test_churn_is_shard_local(self):
        index, vectors = self.build()
        index.remove_document(42)
        fresh = unit_rows(1, 8, seed=77)[0]
        index.add_document(404, fresh)
        assert 42 not in index and 404 in index
        hits = index.search(vectors[42], 400, nprobe=100)
        ids = [doc_id for _, doc_id in hits]
        assert 42 not in ids and 404 in ids
