"""Sharded retrieval: partitioning, fan-out/merge parity, incremental churn."""

import threading

import pytest

from repro.search import (
    BM25Ranker,
    SearchConfig,
    SearchEngine,
    ShardedIndex,
    ShardedSearchEngine,
    TermOverlapRanker,
)

DOCS = {
    0: ("red", "men", "sock"),
    1: ("red", "men", "breathable", "low-cut-sock"),
    2: ("red", "men", "anklet"),
    3: ("blue", "women", "sock"),
    4: ("red", "women", "sock"),
    5: ("blue", "men", "sock", "sock"),
    6: ("green", "children", "sock"),
    7: ("red", "children", "anklet"),
}


@pytest.fixture()
def sharded():
    index = ShardedIndex(num_shards=3, parallel=False)
    for doc_id, tokens in DOCS.items():
        index.add_document(doc_id, tokens)
    yield index
    index.close()


class TestPartitioning:
    def test_docs_routed_by_modulo(self, sharded):
        assert sharded.shard_of(4) == 1
        assert sharded.shard_sizes() == [3, 3, 2]
        assert len(sharded) == len(DOCS)

    def test_contains_and_document(self, sharded):
        assert 5 in sharded
        assert 99 not in sharded
        assert sharded.document(5) == ("blue", "men", "sock", "sock")

    def test_duplicate_add_rejected(self, sharded):
        with pytest.raises(ValueError):
            sharded.add_document(0, ("again",))

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardedIndex(num_shards=0)


class TestIncrementalChurn:
    def test_add_then_search(self, sharded):
        sharded.add_document(8, ("purple", "sock"))
        outcome = sharded.search([["purple", "sock"]], k=5)
        assert outcome.doc_ids == [8]

    def test_remove_then_search(self, sharded):
        sharded.remove_document(2)
        outcome = sharded.search([["anklet"]], k=5)
        assert 2 not in outcome.doc_ids
        assert 7 in outcome.doc_ids

    def test_remove_unknown_raises(self, sharded):
        with pytest.raises(KeyError):
            sharded.remove_document(99)

    def test_stats_aggregate_and_invalidate(self, sharded):
        stats = sharded.stats()
        assert stats.num_docs == len(DOCS)
        assert stats.document_frequency("sock") == 5
        sharded.remove_document(3)
        assert sharded.stats().document_frequency("sock") == 4

    def test_concurrent_writers_to_distinct_shards(self):
        index = ShardedIndex(num_shards=4, parallel=False)
        errors = []

        def add_range(start):
            try:
                for doc_id in range(start, 400, 4):
                    index.add_document(doc_id, ("tok", f"t{doc_id % 7}"))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=add_range, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(index) == 400
        assert index.stats().document_frequency("tok") == 400
        index.close()


class TestChurnSearchInterleaving:
    """Searches interleaved with add/remove must always see a consistent
    index: exactly the live documents, with live global statistics."""

    def test_interleaved_churn_results_track_live_set(self):
        index = ShardedIndex(num_shards=3, parallel=False)
        alive: set[int] = set()
        for doc_id in range(60):
            index.add_document(doc_id, ("tok", f"shade{doc_id % 5}"))
            alive.add(doc_id)
            if doc_id % 3 == 2:
                victim = doc_id - 2
                index.remove_document(victim)
                alive.discard(victim)
            outcome = index.search([["tok"]], k=100)
            assert sorted(outcome.doc_ids) == sorted(alive)
            assert index.stats().document_frequency("tok") == len(alive)
        index.close()

    def test_search_concurrent_with_writer_sees_all_or_nothing(self):
        index = ShardedIndex(num_shards=2, parallel=False)
        for doc_id in range(20):
            index.add_document(doc_id, ("filler", f"f{doc_id}"))
        stop = threading.Event()
        errors: list[Exception] = []

        def churn_beacon():
            # One document with a unique token flaps in and out; a search
            # must see it fully present or fully absent, never half-applied.
            try:
                while not stop.is_set():
                    index.add_document(999, ("beacon", "filler"))
                    index.remove_document(999)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        writer = threading.Thread(target=churn_beacon)
        writer.start()
        try:
            for _ in range(300):
                outcome = index.search([["beacon"]], k=5)
                assert outcome.doc_ids in ([], [999])
        finally:
            stop.set()
            writer.join()
        assert not errors
        index.close()

    def test_engine_product_churn_keeps_catalog_and_index_lockstep(self, tiny_market):
        import numpy as np

        from repro.data.catalog import CatalogGenerator

        engine = ShardedSearchEngine(
            tiny_market.catalog, SearchConfig(max_candidates=10), num_shards=3,
            parallel=False,
        )
        rng = np.random.default_rng(7)
        new_id = tiny_market.catalog.next_product_id()
        product = CatalogGenerator().sample_product("phone", new_id, rng)
        engine.add_product(product)
        try:
            # the session-scoped catalog must be restored even on failure
            assert new_id in tiny_market.catalog
            assert new_id in engine.index
            assert new_id in engine.search(product.title).doc_ids
        finally:
            engine.remove_product(new_id)
        assert new_id not in tiny_market.catalog
        assert new_id not in engine.index
        assert new_id not in engine.search(product.title).doc_ids
        engine.close()

    def test_engine_rejects_bad_product_churn_atomically(self, tiny_market):
        engine = ShardedSearchEngine(
            tiny_market.catalog, SearchConfig(max_candidates=5), num_shards=2,
            parallel=False,
        )
        existing = tiny_market.catalog.products[0]
        size_before = len(engine.index)
        with pytest.raises(ValueError):
            engine.add_product(existing)  # duplicate id: catalog rejects first
        with pytest.raises(KeyError):
            engine.remove_product(10_000_000)
        assert len(engine.index) == size_before
        engine.close()


class TestFanOutMerge:
    def test_search_matches_union_of_queries(self, sharded):
        outcome = sharded.search([["anklet"], ["blue"]], k=10, ranker=TermOverlapRanker())
        assert sorted(outcome.doc_ids) == [2, 3, 5, 7]

    def test_parallel_equals_serial(self):
        parallel = ShardedIndex(num_shards=3, parallel=True)
        for doc_id, tokens in DOCS.items():
            parallel.add_document(doc_id, tokens)
        serial_outcome = None
        with parallel:
            queries = [["red", "men", "sock"], ["red", "men", "anklet"]]
            parallel_outcome = parallel.search(queries, k=5)
        serial = ShardedIndex(num_shards=3, parallel=False)
        for doc_id, tokens in DOCS.items():
            serial.add_document(doc_id, tokens)
        serial_outcome = serial.search(queries, k=5)
        assert parallel_outcome.doc_ids == serial_outcome.doc_ids
        assert parallel_outcome.scores == serial_outcome.scores
        assert parallel_outcome.postings_accessed == serial_outcome.postings_accessed

    def test_empty_queries_raise(self, sharded):
        with pytest.raises(ValueError):
            sharded.search([[]], k=5)

    def test_per_shard_accounting_sums(self, sharded):
        outcome = sharded.search([["red", "sock"]], k=5)
        assert outcome.postings_accessed == sum(outcome.per_shard_postings)
        assert len(outcome.per_shard_postings) == 3

    def test_scores_sorted_descending_with_doc_tiebreak(self, sharded):
        outcome = sharded.search([["sock"]], k=10)
        pairs = list(zip([-s for s in outcome.scores], outcome.doc_ids))
        assert pairs == sorted(pairs)


class TestShardedEngineParity:
    """The facade must return exactly what the unsharded engine returns."""

    @pytest.fixture(scope="class")
    def engines(self, tiny_market):
        config = SearchConfig(max_candidates=20, ranker="bm25")
        single = SearchEngine(tiny_market.catalog, config)
        sharded = ShardedSearchEngine(
            tiny_market.catalog, config, num_shards=4, parallel=True
        )
        yield single, sharded
        sharded.close()

    @pytest.mark.parametrize(
        "query,rewrites",
        [
            ("senior mobile phone", ["big-button mobile phone", "flip mobile phone"]),
            ("nike shoe", ["running shoe"]),
            ("apple", []),
            ("fresh fruit", ["organic fresh fruit", "sweet fresh fruit"]),
        ],
    )
    def test_topk_identical(self, engines, query, rewrites):
        single, sharded = engines
        assert sharded.search(query, rewrites).doc_ids == single.search(query, rewrites).doc_ids

    def test_overlap_ranker_parity(self, tiny_market):
        config = SearchConfig(max_candidates=15, ranker="overlap")
        single = SearchEngine(tiny_market.catalog, config)
        sharded = ShardedSearchEngine(
            tiny_market.catalog, config, num_shards=3, parallel=False
        )
        assert (
            sharded.search("mobile phone").doc_ids
            == single.search("mobile phone").doc_ids
        )
        sharded.close()

    def test_empty_query_raises(self, engines):
        _, sharded = engines
        with pytest.raises(ValueError):
            sharded.search("   ")

    def test_postings_cost_matches_unsharded_total(self, engines):
        """Shard postings split a term's list; totals must agree with the
        unsharded cost when no early exit diverges (single-term query)."""
        single, sharded = engines
        q = "phone"
        assert (
            sharded.search(q).postings_accessed == single.search(q).postings_accessed
        )
