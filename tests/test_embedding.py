"""Dual-encoder embedding model (DPSR substitute)."""

import numpy as np
import pytest

from repro.embedding import DualEncoder, DualEncoderConfig, train_dual_encoder


@pytest.fixture(scope="module")
def trained_encoder(tiny_market):
    encoder = DualEncoder(tiny_market.vocab, DualEncoderConfig(seed=0))
    losses = train_dual_encoder(
        encoder, tiny_market.train_pairs, steps=120, rng=np.random.default_rng(0)
    )
    return encoder, losses


class TestEncodings:
    def test_unit_norm(self, tiny_market):
        encoder = DualEncoder(tiny_market.vocab)
        vec = encoder.encode_query("senior mobile phone")
        np.testing.assert_allclose(np.linalg.norm(vec), 1.0, atol=1e-9)
        vec_title = encoder.encode_title("huawei official mobile phone senior")
        np.testing.assert_allclose(np.linalg.norm(vec_title), 1.0, atol=1e-9)

    def test_cosine_self_similarity_is_one(self, tiny_market):
        encoder = DualEncoder(tiny_market.vocab)
        assert encoder.cosine("senior phone", "senior phone") == pytest.approx(1.0)

    def test_cosine_symmetric(self, tiny_market):
        encoder = DualEncoder(tiny_market.vocab)
        a = encoder.cosine("senior phone", "fresh fruit")
        b = encoder.cosine("fresh fruit", "senior phone")
        assert a == pytest.approx(b)

    def test_padding_does_not_change_encoding(self, tiny_market):
        """Mean pooling must ignore PAD positions."""
        encoder = DualEncoder(tiny_market.vocab)
        vocab = tiny_market.vocab
        ids = np.array([vocab.encode(["mobile", "phone"], add_eos=False)])
        padded = np.array([vocab.encode(["mobile", "phone"], add_eos=False) + [vocab.pad_id] * 3])
        from repro.autograd import no_grad

        with no_grad():
            a = encoder.query_encoding(ids).data
            b = encoder.query_encoding(padded).data
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestBatchEncoding:
    """Shape, normalization, and determinism of the batched encode APIs."""

    TEXTS = [
        "senior mobile phone",
        "adidas running shoe",
        ["huawei", "official", "mobile", "phone"],
        "fresh imported fruit",
    ]

    def test_output_shape(self, tiny_market):
        encoder = DualEncoder(tiny_market.vocab)
        out = encoder.encode_queries(self.TEXTS)
        assert out.shape == (len(self.TEXTS), encoder.config.output_dim)
        assert encoder.encode_titles(self.TEXTS).shape == out.shape

    def test_rows_are_unit_norm(self, tiny_market):
        encoder = DualEncoder(tiny_market.vocab)
        out = encoder.encode_queries(self.TEXTS)
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0, atol=1e-9)

    def test_batch_matches_single_encode(self, tiny_market):
        """Padding in a mixed-length batch must not change any row."""
        encoder = DualEncoder(tiny_market.vocab)
        batched = encoder.encode_queries(self.TEXTS)
        for row, text in zip(batched, self.TEXTS):
            np.testing.assert_allclose(row, encoder.encode_query(text), atol=1e-12)

    def test_chunking_invariance(self, tiny_market):
        encoder = DualEncoder(tiny_market.vocab)
        small = encoder.encode_titles(self.TEXTS, batch_size=2)
        large = encoder.encode_titles(self.TEXTS, batch_size=512)
        np.testing.assert_allclose(small, large, atol=1e-12)

    def test_same_seed_same_embeddings(self, tiny_market):
        """Two encoders built from the same vocab+seed agree bit for bit."""
        a = DualEncoder(tiny_market.vocab, DualEncoderConfig(seed=5))
        b = DualEncoder(tiny_market.vocab, DualEncoderConfig(seed=5))
        np.testing.assert_array_equal(
            a.encode_queries(self.TEXTS), b.encode_queries(self.TEXTS)
        )

    def test_different_seed_differs(self, tiny_market):
        a = DualEncoder(tiny_market.vocab, DualEncoderConfig(seed=5))
        b = DualEncoder(tiny_market.vocab, DualEncoderConfig(seed=6))
        assert not np.allclose(
            a.encode_queries(self.TEXTS), b.encode_queries(self.TEXTS)
        )

    def test_empty_text_embeds_to_zero(self, tiny_market):
        encoder = DualEncoder(tiny_market.vocab)
        out = encoder.encode_queries(["", "senior phone", ""])
        np.testing.assert_array_equal(out[0], np.zeros(encoder.config.output_dim))
        np.testing.assert_array_equal(out[2], np.zeros(encoder.config.output_dim))
        assert np.linalg.norm(out[1]) == pytest.approx(1.0)

    def test_no_texts(self, tiny_market):
        encoder = DualEncoder(tiny_market.vocab)
        assert encoder.encode_queries([]).shape == (0, encoder.config.output_dim)

    def test_bad_batch_size(self, tiny_market):
        encoder = DualEncoder(tiny_market.vocab)
        with pytest.raises(ValueError):
            encoder.encode_queries(self.TEXTS, batch_size=0)


class TestTraining:
    def test_loss_decreases(self, trained_encoder):
        _, losses = trained_encoder
        assert losses[-1] < losses[0] * 0.8

    def test_click_pairs_score_higher_than_random(self, trained_encoder, tiny_market):
        encoder, _ = trained_encoder
        rng = np.random.default_rng(0)
        pairs = tiny_market.train_pairs
        positive, negative = [], []
        for _ in range(30):
            i, j = rng.integers(0, len(pairs), size=2)
            q_i, t_i, _ = pairs[i]
            _, t_j, _ = pairs[j]
            q_vec = encoder.encode_query(list(q_i))
            positive.append(float(q_vec @ encoder.encode_title(list(t_i))))
            negative.append(float(q_vec @ encoder.encode_title(list(t_j))))
        assert np.mean(positive) > np.mean(negative)

    def test_semantic_neighbors_closer_than_strangers(self, trained_encoder):
        encoder, _ = trained_encoder
        related = encoder.cosine("senior mobile phone", "cellphone for grandpa")
        unrelated = encoder.cosine("senior mobile phone", "fresh imported fruit")
        assert related > unrelated

    def test_empty_pairs_rejected(self, tiny_market):
        with pytest.raises(ValueError):
            train_dual_encoder(DualEncoder(tiny_market.vocab), [])
