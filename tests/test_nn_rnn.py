"""Recurrent cells, encoder padding behaviour and additive attention."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    AdditiveAttention,
    GRUCell,
    RecurrentDecoderCell,
    RecurrentEncoder,
    RNNCell,
)


class TestCells:
    @pytest.mark.parametrize("cell_cls", [RNNCell, GRUCell])
    def test_step_shape(self, cell_cls):
        cell = cell_cls(4, 8, rng=np.random.default_rng(0))
        h = cell.initial_state(3)
        out = cell(Tensor(np.ones((3, 4))), h)
        assert out.shape == (3, 8)

    @pytest.mark.parametrize("cell_cls", [RNNCell, GRUCell])
    def test_initial_state_zero(self, cell_cls):
        cell = cell_cls(4, 8, rng=np.random.default_rng(0))
        np.testing.assert_allclose(cell.initial_state(2).data, np.zeros((2, 8)))

    def test_rnn_output_bounded_by_tanh(self):
        cell = RNNCell(4, 8, rng=np.random.default_rng(0))
        out = cell(Tensor(np.full((2, 4), 100.0)), cell.initial_state(2))
        assert np.all(np.abs(out.data) <= 1.0)

    def test_gru_zero_update_gate_keeps_state(self):
        """With z forced to 1 (keep), h' == h regardless of input."""
        cell = GRUCell(4, 4, rng=np.random.default_rng(0))
        # Force the update gate pre-activation very positive: z ~ 1.
        cell.bias.data[:4] = 50.0
        h = Tensor(np.random.default_rng(1).normal(size=(2, 4)))
        out = cell(Tensor(np.random.default_rng(2).normal(size=(2, 4))), h)
        np.testing.assert_allclose(out.data, h.data, atol=1e-6)

    @pytest.mark.parametrize("cell_cls", [RNNCell, GRUCell])
    def test_gradients_flow(self, cell_cls):
        cell = cell_cls(4, 8, rng=np.random.default_rng(0))
        out = cell(Tensor(np.ones((2, 4))), cell.initial_state(2))
        out.sum().backward()
        for name, p in cell.named_parameters():
            assert p.grad is not None, name


class TestRecurrentEncoder:
    def test_output_shapes(self):
        enc = RecurrentEncoder(GRUCell(4, 8, rng=np.random.default_rng(0)))
        outputs, final = enc(Tensor(np.random.default_rng(1).normal(size=(2, 5, 4))))
        assert outputs.shape == (2, 5, 8)
        assert final.shape == (2, 8)

    def test_final_state_is_last_output(self):
        enc = RecurrentEncoder(GRUCell(4, 8, rng=np.random.default_rng(0)))
        outputs, final = enc(Tensor(np.random.default_rng(1).normal(size=(2, 5, 4))))
        np.testing.assert_allclose(outputs.data[:, -1], final.data)

    def test_padding_carries_state_forward(self):
        """The final state of a padded sequence equals the state of the
        unpadded sequence at its true end."""
        enc = RecurrentEncoder(GRUCell(4, 8, rng=np.random.default_rng(0)))
        rng = np.random.default_rng(1)
        real = rng.normal(size=(1, 3, 4))
        _, final_short = enc(Tensor(real))

        padded = np.concatenate([real, np.zeros((1, 2, 4))], axis=1)
        pad_mask = np.array([[False, False, False, True, True]])
        _, final_padded = enc(Tensor(padded), pad_mask=pad_mask)
        np.testing.assert_allclose(final_short.data, final_padded.data, atol=1e-12)


class TestAdditiveAttention:
    def test_weights_sum_to_one(self):
        attn = AdditiveAttention(8, 8, 8, rng=np.random.default_rng(0))
        query = Tensor(np.random.default_rng(1).normal(size=(2, 8)))
        memory = Tensor(np.random.default_rng(2).normal(size=(2, 5, 8)))
        _, weights = attn(query, memory)
        np.testing.assert_allclose(weights.data.sum(axis=-1), np.ones(2))

    def test_pad_mask_zeroes_weights(self):
        attn = AdditiveAttention(8, 8, 8, rng=np.random.default_rng(0))
        query = Tensor(np.random.default_rng(1).normal(size=(1, 8)))
        memory = Tensor(np.random.default_rng(2).normal(size=(1, 4, 8)))
        mask = np.array([[False, False, True, True]])
        _, weights = attn(query, memory, mask)
        np.testing.assert_allclose(weights.data[0, 2:], 0.0, atol=1e-9)

    def test_context_is_convex_combination(self):
        attn = AdditiveAttention(4, 4, 4, rng=np.random.default_rng(0))
        query = Tensor(np.random.default_rng(1).normal(size=(1, 4)))
        memory_data = np.random.default_rng(2).normal(size=(1, 3, 4))
        context, weights = attn(query, Tensor(memory_data))
        expected = (weights.data[0][:, None] * memory_data[0]).sum(axis=0)
        np.testing.assert_allclose(context.data[0], expected, atol=1e-12)

    def test_last_weights_recorded(self):
        attn = AdditiveAttention(4, 4, 4, rng=np.random.default_rng(0))
        attn(
            Tensor(np.zeros((1, 4))),
            Tensor(np.random.default_rng(0).normal(size=(1, 3, 4))),
        )
        assert attn.last_weights.shape == (1, 3)


class TestRecurrentDecoderCell:
    def test_step_without_attention(self):
        cell = RecurrentDecoderCell(GRUCell(4, 8, rng=np.random.default_rng(0)))
        h = cell.initial_state(2)
        out, new_h = cell.step(Tensor(np.ones((2, 4))), h)
        assert out.shape == (2, 8)
        assert new_h.shape == (2, 8)

    def test_step_with_attention_requires_memory(self):
        attn = AdditiveAttention(8, 8, 8, rng=np.random.default_rng(0))
        cell = RecurrentDecoderCell(GRUCell(12, 8, rng=np.random.default_rng(0)), attn)
        with pytest.raises(ValueError):
            cell.step(Tensor(np.ones((2, 4))), cell.initial_state(2))

    def test_step_with_attention(self):
        attn = AdditiveAttention(8, 8, 8, rng=np.random.default_rng(0))
        cell = RecurrentDecoderCell(GRUCell(4 + 8, 8, rng=np.random.default_rng(0)), attn)
        memory = Tensor(np.random.default_rng(1).normal(size=(2, 5, 8)))
        out, _ = cell.step(Tensor(np.ones((2, 4))), cell.initial_state(2), memory=memory)
        assert out.shape == (2, 8)
