"""The `python -m repro.experiments` command-line runner (cheap paths only)."""

import pytest

from repro.experiments.__main__ import RUNNERS, SCALES, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table7", "fig7", "lm_exploration"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["tableX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_covers_every_table_and_figure(self):
        expected = {
            "table1", "table2", "table3_table4", "table5", "table6",
            "table7", "table8", "fig5", "fig6", "fig7", "fig8", "fig9",
        }
        assert expected <= set(RUNNERS)

    def test_registry_covers_scale_experiments(self):
        expected = {
            "serving", "serving_batched", "retrieval_scale",
            "hybrid_retrieval", "online_replay",
        }
        assert expected <= set(RUNNERS)

    def test_scales_registered(self):
        assert set(SCALES) == {"small", "default"}

    def test_runs_cheap_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Model hyperparameters" in out
