"""The `python -m repro.experiments` command-line runner.

Includes the registry-drift gate (every experiment module that defines a
``run`` is registered) and the tiny-scale smoke that actually executes
every registered experiment and checks its ``--out`` artifact — the test
that catches "added an experiment, forgot to register it" and "runner
crashes outside its benchmark" in one sweep.
"""

import importlib
import pkgutil

import pytest

import repro.experiments as experiments_pkg
from repro.experiments.__main__ import RUNNERS, SCALES, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table7", "fig7", "lm_exploration"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["tableX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_covers_every_table_and_figure(self):
        expected = {
            "table1", "table2", "table3_table4", "table5", "table6",
            "table7", "table8", "fig5", "fig6", "fig7", "fig8", "fig9",
        }
        assert expected <= set(RUNNERS)

    def test_registry_covers_scale_experiments(self):
        expected = {
            "serving", "serving_batched", "retrieval_scale",
            "hybrid_retrieval", "online_replay",
        }
        assert expected <= set(RUNNERS)

    def test_registry_covers_scenario_library(self):
        """Scenario drift gate, both directions: the ``scenarios``
        experiment is registered, and every arm in the scenario registry
        is one the experiment (and the CI smoke) will actually run."""
        assert "scenarios" in RUNNERS
        from repro.online import SCENARIOS, get_scenario

        expected_arms = {
            "multi_tenant", "hot_key_storm", "churn_storm",
            "cold_restart", "cold_restart_persistent", "vocab_drift",
            "shard_failover", "gateway_soak",
        }
        assert set(SCENARIOS) == expected_arms
        for name in expected_arms:
            assert get_scenario(name).name == name

    def test_scales_registered(self):
        assert set(SCALES) == {"tiny", "small", "default"}

    def test_runs_cheap_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Model hyperparameters" in out

    def test_every_run_function_is_registered(self):
        """Registry drift gate: a module exposing ``run(scale)`` must be in
        RUNNERS (modules with several runners register each by name)."""
        registered = set(RUNNERS.values())
        missing = []
        for info in pkgutil.iter_modules(experiments_pkg.__path__):
            if info.name.startswith("_"):
                continue
            module = importlib.import_module(f"repro.experiments.{info.name}")
            runner = getattr(module, "run", None)
            if callable(runner) and getattr(runner, "__module__", "") == module.__name__:
                if runner not in registered:
                    missing.append(module.__name__)
        assert not missing, (
            f"experiment modules with an unregistered run(): {missing} — "
            "add them to RUNNERS in repro/experiments/__main__.py"
        )

    def test_out_dir_written_for_cheap_experiment(self, tmp_path, capsys):
        assert main(["table2", "--out", str(tmp_path / "artifacts")]) == 0
        artifact = tmp_path / "artifacts" / "table2.txt"
        assert artifact.exists()
        assert "Model hyperparameters" in artifact.read_text()


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_every_registered_experiment_writes_artifact(name, tmp_path, capsys):
    """Run EVERY registered experiment at the tiny smoke scale and check
    it exits 0 and leaves exactly one non-empty result artifact."""
    out = tmp_path / "artifacts"
    assert main([name, "--scale", "tiny", "--out", str(out)]) == 0
    artifacts = list(out.glob("*.txt"))
    assert len(artifacts) == 1, f"{name} left {artifacts}"
    text = artifacts[0].read_text()
    assert text.startswith("== ")
    assert len(text.strip()) > 0
