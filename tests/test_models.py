"""Seq2seq model families: shapes, training signal, decode/forward parity."""

import numpy as np
import pytest

from repro.models import (
    AttentionNMT,
    HybridNMT,
    ModelConfig,
    RecurrentNMT,
    TransformerNMT,
    paper_hyperparameters,
)
from repro.optim import Adam

CONFIG = ModelConfig(
    vocab_size=40,
    d_model=16,
    num_heads=2,
    d_ff=32,
    encoder_layers=1,
    decoder_layers=1,
    dropout=0.0,
    max_len=32,
    seed=0,
)


def _all_models():
    return [
        ("transformer", TransformerNMT(CONFIG)),
        ("gru_attention", AttentionNMT(CONFIG)),
        ("rnn_plain", RecurrentNMT(CONFIG.scaled(cell_type="rnn"), use_attention=False)),
        ("gru_plain", RecurrentNMT(CONFIG, use_attention=False)),
        ("hybrid", HybridNMT(CONFIG)),
    ]


SRC = np.array([[5, 6, 7, 2], [8, 9, 2, 0]])
TGT_IN = np.array([[1, 10, 11], [1, 12, 0]])
TGT_OUT = np.array([[10, 11, 2], [12, 2, 0]])


@pytest.mark.parametrize("name,model", _all_models())
class TestInterface:
    def test_forward_shape(self, name, model):
        logits = model.forward(SRC, TGT_IN)
        assert logits.shape == (2, 3, 40)

    def test_loss_finite_and_positive(self, name, model):
        loss, count = model.loss(SRC, TGT_IN, TGT_OUT)
        assert count == 5  # non-pad labels
        assert np.isfinite(loss.item())
        assert loss.item() > 0

    def test_all_parameters_receive_gradients(self, name, model):
        model.train()
        model.zero_grad()
        loss, _ = model.loss(SRC, TGT_IN, TGT_OUT)
        loss.backward()
        missing = [
            pname
            for pname, p in model.named_parameters()
            if p.grad is None or not np.any(p.grad)
        ]
        # The PAD embedding row legitimately gets no gradient; nothing else may.
        assert not [m for m in missing if "embedding" not in m], missing

    def test_sequence_log_prob_negative(self, name, model):
        tgt = np.array([[1, 10, 11, 2], [1, 12, 2, 0]])
        lp = model.sequence_log_prob(SRC, tgt)
        assert lp.shape == (2,)
        assert np.all(lp < 0)

    def test_sequence_log_prob_pad_invariant(self, name, model):
        """Extra PAD on the target must not change the score."""
        tgt = np.array([[1, 10, 11, 2]])
        tgt_padded = np.array([[1, 10, 11, 2, 0, 0]])
        lp = model.sequence_log_prob(SRC[:1], tgt)
        lp_padded = model.sequence_log_prob(SRC[:1], tgt_padded)
        np.testing.assert_allclose(lp, lp_padded, atol=1e-9)

    def test_token_accuracy_in_unit_interval(self, name, model):
        acc = model.token_accuracy(SRC, TGT_IN, TGT_OUT)
        assert 0.0 <= acc <= 1.0

    def test_decode_parity_with_teacher_forcing(self, name, model):
        """start/step logits must equal teacher-forced forward logits —
        the core invariant tying training to decoding."""
        model.eval()
        prefix = np.array([[1, 10, 11]])
        forward_logits = model.forward(SRC[:1], prefix).data

        state = model.start(SRC[:1])
        for t in range(prefix.shape[1]):
            step_logits, state = model.step(state, prefix[:, t])
            np.testing.assert_allclose(
                step_logits[0], forward_logits[0, t], atol=1e-8,
                err_msg=f"{name} step {t}",
            )

    def test_reorder_state_duplicates(self, name, model):
        model.eval()
        state = model.start(SRC[:1])
        wide = state.reorder(np.zeros(3, dtype=np.int64), model)
        logits, _ = model.step(wide, np.array([1, 1, 1]))
        np.testing.assert_allclose(logits[0], logits[1], atol=1e-12)
        np.testing.assert_allclose(logits[0], logits[2], atol=1e-12)

    def test_training_reduces_loss(self, name, model):
        optimizer = Adam(model.parameters(), lr=5e-3)
        first = None
        for _ in range(30):
            model.zero_grad()
            loss, _ = model.loss(SRC, TGT_IN, TGT_OUT)
            if first is None:
                first = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first * 0.8


class TestTransformerSpecific:
    def test_cross_attention_maps_exposed(self):
        model = TransformerNMT(CONFIG)
        model.forward(SRC, TGT_IN)
        maps = model.cross_attention_maps()
        assert len(maps) == CONFIG.decoder_layers
        assert maps[0].shape == (2, CONFIG.num_heads, 3, 4)

    def test_prefix_grows_in_state(self):
        model = TransformerNMT(CONFIG)
        model.eval()
        state = model.start(SRC[:1])
        assert state.payload["prefix"].shape == (1, 0)
        _, state = model.step(state, np.array([1]))
        assert state.payload["prefix"].shape == (1, 1)
        _, state = model.step(state, np.array([7]))
        assert state.payload["prefix"].shape == (1, 2)


class TestRecurrentSpecific:
    def test_invalid_cell_type(self):
        with pytest.raises(ValueError):
            RecurrentNMT(CONFIG.scaled(cell_type="lstm"))

    def test_attention_nmt_forces_gru(self):
        model = AttentionNMT(CONFIG.scaled(cell_type="rnn"))
        assert model.config.cell_type == "gru"

    def test_attention_map_none_without_attention(self):
        model = RecurrentNMT(CONFIG, use_attention=False)
        assert model.attention_map() is None

    def test_attention_map_after_step(self):
        model = AttentionNMT(CONFIG)
        model.eval()
        state = model.start(SRC[:1])
        model.step(state, np.array([1]))
        assert model.attention_map() is not None

    def test_constant_per_step_state_size(self):
        """RNN decode state does not grow with the prefix — the paper's
        constant-per-step-cost property."""
        model = RecurrentNMT(CONFIG, use_attention=False)
        model.eval()
        state = model.start(SRC[:1])
        _, state1 = model.step(state, np.array([1]))
        _, state2 = model.step(state1, np.array([5]))
        assert state1.payload["hidden"].shape == state2.payload["hidden"].shape


class TestPaperHyperparameters:
    def test_table2_values(self):
        hp = paper_hyperparameters()
        assert hp["query_to_title"]["transformer_layers"] == 4
        assert hp["title_to_query"]["transformer_layers"] == 1
        assert hp["query_to_title"]["embedding_dim"] == 512
        assert hp["optimizer"]["learning_rate"] == 0.05
        assert hp["training"]["lambda_cyclic"] == 0.1
        assert hp["training"]["top_n"] == 40

    def test_config_scaled_copy(self):
        scaled = CONFIG.scaled(d_model=64)
        assert scaled.d_model == 64
        assert CONFIG.d_model == 16  # original untouched
