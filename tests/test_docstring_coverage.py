"""Docstring coverage gate for the retrieval-facing packages.

Every public module, class, function, method, and property under
``repro.search``, ``repro.embedding``, and ``repro.online`` must carry a
docstring.  CI runs this next to the docs-reachability check: the
retrieval stack is the part of the codebase other layers program
against, so its API surface documents itself or the build fails.

"Public" means: module-level names not starting with ``_`` that are
*defined* in the module (re-exports are checked where they are defined),
plus non-dunder attributes defined directly on public classes.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

PACKAGES = (
    "repro.search",
    "repro.embedding",
    "repro.online",
    "repro.store",
    "repro.cluster",
    "repro.gateway",
    "repro.decoding",
)


def _iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if not info.name.startswith("_"):
                yield importlib.import_module(f"{package_name}.{info.name}")


def _class_offenders(cls, module_name: str) -> list[str]:
    offenders = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if inspect.isfunction(member) and not member.__doc__:
            offenders.append(f"{module_name}.{cls.__name__}.{name}")
        elif isinstance(member, property):
            if not (member.__doc__ or (member.fget and member.fget.__doc__)):
                offenders.append(f"{module_name}.{cls.__name__}.{name} (property)")
    return offenders


def _offenders() -> list[str]:
    offenders = []
    for module in _iter_modules():
        if not module.__doc__:
            offenders.append(f"{module.__name__} (module)")
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; checked at its definition site
            if not obj.__doc__:
                offenders.append(f"{module.__name__}.{name}")
            elif inspect.isclass(obj):
                offenders.extend(_class_offenders(obj, module.__name__))
    return sorted(set(offenders))


def test_public_api_is_documented():
    offenders = _offenders()
    assert not offenders, (
        "public names without docstrings (docs/SEMANTIC.md documents the "
        f"expected format): {offenders}"
    )
