"""Evaluation machinery: lexical metrics, simulated labeler, A/B simulator."""

import numpy as np
import pytest

from repro.core.rewriter import RewriteResult
from repro.data.domain import Intent
from repro.evaluation import (
    ABTestConfig,
    ABTestSimulator,
    LabelerConfig,
    SimulatedLabeler,
    UserModelConfig,
    method_similarity_metrics,
    pairwise_evaluation,
    rewrite_similarity,
)


class FixedRewriter:
    def __init__(self, mapping):
        self.mapping = mapping

    def rewrite(self, query, k=3):
        return [
            RewriteResult(tokens=tuple(r.split()), log_prob=-1.0)
            for r in self.mapping.get(query, [])[:k]
        ]


class TestLexicalMetrics:
    def test_identical_rewrite(self):
        metrics = rewrite_similarity("red sock", "red sock")
        assert metrics["f1"] == pytest.approx(1.0)
        assert metrics["edit_distance"] == 0.0

    def test_single_substitution(self):
        metrics = rewrite_similarity("red men sock", "red men anklet")
        assert 0.0 < metrics["f1"] < 1.0
        assert metrics["edit_distance"] == 1.0

    def test_cosine_included_with_encoder(self, tiny_market):
        from repro.embedding import DualEncoder

        encoder = DualEncoder(tiny_market.vocab)
        metrics = rewrite_similarity("mobile phone", "senior phone", encoder=encoder)
        assert "cosine" in metrics

    def test_method_metrics_aggregate(self):
        rewriter = FixedRewriter({"a b": ["a c"], "x y": ["x z", "x w"]})
        row = method_similarity_metrics(rewriter, ["a b", "x y", "uncovered"])
        assert row["coverage"] == pytest.approx(2 / 3)
        assert 0 < row["f1"] < 1

    def test_method_metrics_no_rewrites_raises(self):
        with pytest.raises(ValueError):
            method_similarity_metrics(FixedRewriter({}), ["a"])


class TestSimulatedLabeler:
    @pytest.fixture(scope="class")
    def labeler(self, tiny_market):
        return SimulatedLabeler(tiny_market.catalog, LabelerConfig(noise=0.0, seed=0))

    def test_on_intent_rewrite_scores_high(self, labeler, tiny_market):
        product = tiny_market.catalog.by_category["phone"][0]
        intent = Intent(category="phone", brand=product.brand)
        good = labeler.relevance(intent, f"{product.brand} mobile phone")
        bad = labeler.relevance(intent, "fresh imported fruit")
        assert good > bad

    def test_empty_rewrite_scores_zero(self, labeler):
        assert labeler.relevance(Intent(category="phone"), "") == 0.0

    def test_gibberish_rewrite_scores_zero(self, labeler):
        assert labeler.relevance(Intent(category="phone"), "zzz qqq www") == 0.0

    def test_best_relevance_takes_max(self, labeler):
        intent = Intent(category="phone")
        both = labeler.best_relevance(intent, ["mobile phone", "fresh fruit"])
        single = labeler.relevance(intent, "mobile phone")
        assert both == pytest.approx(single)

    def test_compare_win_lose_tie(self, labeler):
        intent = Intent(category="phone")
        assert labeler.compare(intent, ["mobile phone"], ["fresh fruit"]) == "win"
        assert labeler.compare(intent, ["fresh fruit"], ["mobile phone"]) == "lose"
        assert labeler.compare(intent, ["mobile phone"], ["mobile phone"]) == "tie"

    def test_noise_flips_labels(self, tiny_market):
        noisy = SimulatedLabeler(tiny_market.catalog, LabelerConfig(noise=1.0, seed=0))
        intent = Intent(category="phone")
        labels = {noisy.compare(intent, ["mobile phone"], ["fresh fruit"]) for _ in range(30)}
        assert len(labels) >= 2  # pure noise produces varied labels

    def test_pairwise_evaluation_fractions_sum_to_one(self, labeler, tiny_market):
        evaluation = [(r.text, r.intent) for r in list(tiny_market.click_log.queries.values())[:10]]
        a = FixedRewriter({q: ["mobile phone"] for q, _ in evaluation})
        b = FixedRewriter({q: ["fresh fruit"] for q, _ in evaluation})
        row = pairwise_evaluation(labeler, evaluation, a, b)
        assert row["win"] + row["tie"] + row["lose"] == pytest.approx(1.0)

    def test_pairwise_empty_raises(self, labeler):
        with pytest.raises(ValueError):
            pairwise_evaluation(labeler, [], None, None)


class TestABTest:
    @pytest.fixture(scope="class")
    def pool(self, tiny_market):
        return [(r.text, r.intent) for r in list(tiny_market.click_log.queries.values())[:30]]

    def test_identical_arms_have_zero_delta(self, tiny_market, pool):
        """Common random numbers: same rewriters => exactly equal arms."""
        rewriter = FixedRewriter({})
        sim = ABTestSimulator(
            tiny_market.catalog, pool, rewriter, rewriter,
            ABTestConfig(days=1, sessions_per_day=40, seed=0),
        )
        report = sim.run()
        assert report.ucvr_delta == 0.0
        assert report.gmv_delta == 0.0
        assert report.qrr_delta == 0.0

    def test_helpful_rewrites_improve_conversion(self, tiny_market, pool):
        """A variation that rewrites every query to its standard category
        form should lift UCVR/GMV for colloquial traffic."""
        from repro.data.catalog import CATEGORY_SPECS

        def oracle_rewrites():
            mapping = {}
            for text, intent in pool:
                canonical = list(CATEGORY_SPECS[intent.category].canonical)
                parts = ([intent.brand] if intent.brand else []) + (
                    [intent.audience] if intent.audience else []
                ) + canonical
                mapping[text] = [" ".join(parts)]
            return mapping

        sim = ABTestSimulator(
            tiny_market.catalog, pool,
            control_rewriter=None,
            variation_rewriter=FixedRewriter(oracle_rewrites()),
            config=ABTestConfig(days=2, sessions_per_day=80, seed=1),
        )
        report = sim.run()
        assert report.variation.ucvr >= report.control.ucvr
        assert report.variation.gmv >= report.control.gmv
        assert report.variation.qrr <= report.control.qrr

    def test_report_row_keys(self, tiny_market, pool):
        rewriter = FixedRewriter({})
        sim = ABTestSimulator(
            tiny_market.catalog, pool, rewriter, rewriter,
            ABTestConfig(days=1, sessions_per_day=5, seed=0),
        )
        row = sim.run().as_row()
        assert set(row) == {"UCVR", "GMV", "QRR"}

    def test_empty_pool_rejected(self, tiny_market):
        with pytest.raises(ValueError):
            ABTestSimulator(tiny_market.catalog, [], None, None)

    def test_unknown_ranker_rejected(self, tiny_market, pool):
        with pytest.raises(ValueError):
            ABTestSimulator(tiny_market.catalog, pool, None, None, ranker="mystery")

    def test_session_counts(self, tiny_market, pool):
        rewriter = FixedRewriter({})
        sim = ABTestSimulator(
            tiny_market.catalog, pool, rewriter, rewriter,
            ABTestConfig(days=3, sessions_per_day=7, seed=0),
        )
        report = sim.run()
        assert report.control.sessions == 21
        assert report.variation.sessions == 21


class TestUserModel:
    def test_relevant_results_convert_more(self, tiny_market):
        from repro.evaluation.abtest import UserModel

        user = UserModel(tiny_market.catalog, UserModelConfig())
        product = tiny_market.catalog.by_category["phone"][0]
        intent = Intent(category="phone", brand=product.brand)
        relevant_docs = [product.product_id] * 5
        irrelevant_docs = [tiny_market.catalog.by_category["fruit"][0].product_id] * 5

        conversions_good = sum(
            user.browse(intent, relevant_docs, np.random.default_rng(s))[0]
            for s in range(60)
        )
        conversions_bad = sum(
            user.browse(intent, irrelevant_docs, np.random.default_rng(s))[0]
            for s in range(60)
        )
        assert conversions_good > conversions_bad

    def test_empty_results_often_reformulate(self, tiny_market):
        from repro.evaluation.abtest import UserModel

        user = UserModel(tiny_market.catalog, UserModelConfig(reformulate_prob=1.0))
        intent = Intent(category="phone")
        _, _, reformulated = user.browse(intent, [], np.random.default_rng(0))
        assert reformulated
