"""Query generation: styles, aliases, polysemy."""

import numpy as np
import pytest

from repro.data.catalog import AUDIENCE_ALIASES, CATEGORY_SPECS, VAGUE_WORDS
from repro.data.domain import Intent, QueryStyle
from repro.data.queries import QueryGenerator


@pytest.fixture()
def generator():
    return QueryGenerator()


class TestIntentSampling:
    def test_sampled_intents_are_valid(self, generator, rng):
        for _ in range(50):
            intent = generator.sample_intent(rng)
            spec = CATEGORY_SPECS[intent.category]
            if intent.brand is not None:
                assert intent.brand in spec.brands
            if intent.audience is not None:
                assert intent.audience in spec.audiences
            for feature in intent.features:
                assert feature in spec.features

    def test_style_distribution_respects_weights(self, rng):
        generator = QueryGenerator({QueryStyle.STANDARD: 1.0, QueryStyle.COLLOQUIAL: 0.0,
                                    QueryStyle.NATURAL: 0.0, QueryStyle.POLYSEMOUS: 0.0})
        styles = {generator.sample_style(rng) for _ in range(20)}
        assert styles == {QueryStyle.STANDARD}


class TestStandardStyle:
    def test_contains_canonical_category(self, generator, rng):
        intent = Intent(category="phone", brand="huawei", audience="senior")
        realization = generator.realize(intent, QueryStyle.STANDARD, rng)
        assert "mobile" in realization.tokens and "phone" in realization.tokens
        assert "huawei" in realization.tokens
        assert "senior" in realization.tokens

    def test_no_aliases_or_vague_words(self, generator, rng):
        alias_tokens = {a for al in AUDIENCE_ALIASES.values() for a in al}
        for _ in range(30):
            intent = generator.sample_intent(rng)
            tokens = set(generator.realize(intent, QueryStyle.STANDARD, rng).tokens)
            assert not tokens & alias_tokens
            assert not tokens & set(VAGUE_WORDS)


class TestColloquialStyle:
    def test_audience_rendered_as_alias_mostly(self, generator):
        rng = np.random.default_rng(0)
        intent = Intent(category="phone", audience="senior")
        alias_hits = 0
        for _ in range(40):
            tokens = generator.realize(intent, QueryStyle.COLLOQUIAL, rng).tokens
            if set(tokens) & set(AUDIENCE_ALIASES["senior"]):
                alias_hits += 1
        assert alias_hits > 20  # alias_prob=0.9

    def test_carries_intent(self, generator, rng):
        intent = Intent(category="shoe", brand="adidas")
        realization = generator.realize(intent, QueryStyle.COLLOQUIAL, rng)
        assert realization.intent is intent
        assert realization.style is QueryStyle.COLLOQUIAL


class TestNaturalStyle:
    def test_has_filler_words(self, generator):
        rng = np.random.default_rng(1)
        intent = Intent(category="phone", audience="senior")
        tokens = generator.realize(intent, QueryStyle.NATURAL, rng).tokens
        assert tokens[0] in ("a", "the", "want", "buy")
        assert "for" in tokens and "my" in tokens

    def test_features_rendered_with_with(self, generator, rng):
        intent = Intent(category="phone", features=("big-button",))
        tokens = list(generator.realize(intent, QueryStyle.NATURAL, rng).tokens)
        assert "with" in tokens
        assert tokens[tokens.index("with") + 1] == "big-button"


class TestPolysemousStyle:
    def test_polysemous_intent_uses_ambiguous_term(self, generator, rng):
        for _ in range(20):
            intent = generator._polysemous_intent(rng)
            assert intent.brand in ("apple", "cherry")

    def test_rendered_query_is_short(self, generator, rng):
        intent = Intent(category="fruit", brand="apple")
        tokens = generator.realize(intent, QueryStyle.POLYSEMOUS, rng).tokens
        assert tokens[0] == "apple"
        assert len(tokens) <= 3

    def test_sample_replaces_intent_for_polysemous(self):
        generator = QueryGenerator({QueryStyle.POLYSEMOUS: 1.0, QueryStyle.STANDARD: 0.0,
                                    QueryStyle.COLLOQUIAL: 0.0, QueryStyle.NATURAL: 0.0})
        rng = np.random.default_rng(0)
        realization = generator.sample(rng)
        assert realization.intent.brand in ("apple", "cherry")


class TestDeterminism:
    def test_same_rng_state_same_query(self, generator):
        a = generator.sample(np.random.default_rng(42))
        b = generator.sample(np.random.default_rng(42))
        assert a.tokens == b.tokens
        assert a.style == b.style
