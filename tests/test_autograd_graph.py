"""Graph-level autograd behaviour: accumulation, reuse, no_grad, deep chains."""

import numpy as np
import pytest

from repro.autograd import Tensor, is_grad_enabled, no_grad


class TestBackwardMechanics:
    def test_gradient_accumulates_across_backward_calls(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t * 3.0).sum().backward()
        (t * 3.0).sum().backward()
        np.testing.assert_allclose(t.grad, [6.0])

    def test_shared_subexpression_accumulates(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        shared = t * 2.0
        out = (shared + shared).sum()  # d/dt = 4
        out.backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_diamond_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        a = t * 3.0
        b = t * 5.0
        (a * b).sum().backward()  # d/dt (15 t^2) = 30 t = 60
        np.testing.assert_allclose(t.grad, [60.0])

    def test_backward_with_explicit_grad(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        out = t * 2.0
        out.backward(np.full((2, 2), 0.5))
        np.testing.assert_allclose(t.grad, np.ones((2, 2)))

    def test_backward_on_non_grad_tensor_raises(self):
        t = Tensor(np.ones(2))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_deep_chain_no_recursion_error(self):
        """Recurrent models build 100+ step chains; iterative DFS must cope."""
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t
        for _ in range(500):
            out = out * 1.001
        out.sum().backward()
        assert t.grad is not None
        np.testing.assert_allclose(t.grad, [1.001**500], rtol=1e-9)

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad is None


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        t = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_detach(self):
        t = Tensor(np.ones(2), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data  # shares storage


class TestTensorBasics:
    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == 3.5

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24
        assert len(t) == 2

    def test_numpy_returns_underlying(self):
        arr = np.ones(3)
        assert Tensor(arr).numpy() is arr

    def test_constant_inputs_receive_no_grad(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = Tensor(np.ones(2))  # constant
        (a * b).sum().backward()
        assert b.grad is None
        assert a.grad is not None
