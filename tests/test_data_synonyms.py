"""Synonym-pair extraction and the rule dictionary."""

import numpy as np
import pytest

from repro.data.synonyms import (
    build_rule_dictionary,
    extract_synonym_pairs,
    sample_queries_with_rules,
)


class TestSynonymExtraction:
    def test_pairs_share_clicks(self, tiny_market):
        log = tiny_market.click_log
        pairs = extract_synonym_pairs(log, min_shared_clicks=2)
        assert pairs
        for a, b, shared in pairs[:50]:
            assert shared >= 2
            assert a != b

    def test_both_directions_present(self, tiny_market):
        pairs = extract_synonym_pairs(tiny_market.click_log, min_shared_clicks=2)
        keyed = {(a, b) for a, b, _ in pairs}
        for a, b, _ in pairs[:50]:
            assert (b, a) in keyed

    def test_max_pairs_cap(self, tiny_market):
        pairs = extract_synonym_pairs(tiny_market.click_log, max_pairs=10)
        assert len(pairs) <= 10

    def test_threshold_monotonicity(self, tiny_market):
        low = extract_synonym_pairs(tiny_market.click_log, min_shared_clicks=2)
        high = extract_synonym_pairs(tiny_market.click_log, min_shared_clicks=5)
        assert len(high) <= len(low)

    def test_shared_click_queries_are_semantically_close(self, tiny_market):
        """Queries sharing many clicks should usually share the intent
        category — that is why they work as q2q training data."""
        log = tiny_market.click_log
        pairs = extract_synonym_pairs(log, min_shared_clicks=3)
        same_category = 0
        for a, b, _ in pairs[:100]:
            intent_a = log.queries[" ".join(a)].intent
            intent_b = log.queries[" ".join(b)].intent
            same_category += intent_a.category == intent_b.category
        assert same_category / max(1, min(100, len(pairs))) > 0.9


class TestRuleDictionary:
    def test_contains_alias_families(self):
        rules = build_rule_dictionary()
        assert rules["grandpa"] == "senior"
        assert rules["ah-di"] == "adidas"
        assert rules["cellphone"] == "mobile phone"

    def test_polyseme_trap_present_by_default(self):
        rules = build_rule_dictionary()
        assert "cherry" in rules
        assert "keyboard" in rules["cherry"]

    def test_polyseme_trap_removable(self):
        rules = build_rule_dictionary(include_polyseme_trap=False)
        assert "cherry" not in rules

    def test_sample_queries_all_have_rules(self, tiny_market):
        rules = build_rule_dictionary()
        rng = np.random.default_rng(0)
        queries = sample_queries_with_rules(tiny_market.click_log, rules, 20, rng)
        assert queries
        for text in queries:
            assert any(token in rules for token in text.split())

    def test_sample_respects_limit(self, tiny_market):
        rules = build_rule_dictionary()
        rng = np.random.default_rng(0)
        assert len(sample_queries_with_rules(tiny_market.click_log, rules, 5, rng)) <= 5
