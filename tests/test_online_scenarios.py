"""Unit tests for the scenario library (``repro.online.scenarios``).

The benchmark suite (``benchmarks/test_scenarios.py``) holds the
acceptance bars at full scale; this file covers the machinery itself —
registry lookup, config validation and scaling floors, the invariant /
outcome value types, hook defaults, and smoke-scale end-to-end runs of
the runner (multi-tenant interleave and the single-tenant arms).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.online import (
    SCENARIOS,
    InvariantResult,
    Scenario,
    ScenarioConfig,
    ScenarioOutcome,
    ScenarioRunner,
    get_scenario,
    run_scenario,
)

#: one shared smoke-scale config (120 requests/tenant) keeps this file fast
SMOKE = ScenarioConfig().scaled(0.04)


class TestRegistry:
    def test_registry_holds_the_eight_arms(self):
        assert set(SCENARIOS) == {
            "multi_tenant",
            "hot_key_storm",
            "churn_storm",
            "cold_restart",
            "cold_restart_persistent",
            "vocab_drift",
            "shard_failover",
            "gateway_soak",
        }

    def test_registry_keys_match_scenario_names(self):
        for key, scenario in SCENARIOS.items():
            assert key == scenario.name
            assert scenario.description

    def test_get_scenario_returns_registered_instance(self):
        assert get_scenario("multi_tenant") is SCENARIOS["multi_tenant"]

    def test_get_scenario_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("nope")


class TestScenarioConfig:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_tenants", 0),
            ("requests_per_tenant", 0),
            ("tenant_id_stride", 100),
            ("search_every", 0),
        ],
    )
    def test_rejects_degenerate_values(self, field, value):
        with pytest.raises(ValueError, match=field):
            ScenarioConfig(**{field: value})

    def test_scaled_shrinks_workload_with_floors(self):
        tiny = ScenarioConfig().scaled(0.001)
        assert tiny.requests_per_tenant == 120
        assert tiny.num_sessions == 120
        assert tiny.intent_pool_size == 30
        assert tiny.products_per_category == 3
        assert tiny.churn_every == 30

    def test_scaled_leaves_policy_knobs_alone(self):
        base = ScenarioConfig()
        tiny = base.scaled(0.04)
        assert tiny.max_batch_size == base.max_batch_size
        assert tiny.cache_capacity == base.cache_capacity
        assert tiny.namespace_cache == base.namespace_cache
        assert tiny.seed == base.seed

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(ValueError, match="factor"):
            ScenarioConfig().scaled(0.0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ScenarioConfig().seed = 1


class TestInvariantResult:
    def test_str_reports_verdict(self):
        ok = InvariantResult(name="bar", passed=True, observed=0.0, bar="== 0")
        bad = InvariantResult(name="bar", passed=False, observed=3.0, bar="== 0")
        assert "PASS" in str(ok)
        assert "FAIL" in str(bad)
        assert "bar" in str(bad)


class TestScenarioOutcome:
    def _outcome(self, passed_flags):
        return ScenarioOutcome(
            scenario="fake",
            config=SMOKE,
            invariants=[
                InvariantResult(name=f"i{n}", passed=p, observed=0.0, bar="== 0")
                for n, p in enumerate(passed_flags)
            ],
            per_tenant={"tenant0": {"requests": 1, "nested": {"b": 2, "a": 1}}},
        )

    def test_passed_and_failures(self):
        assert self._outcome([True, True]).passed
        mixed = self._outcome([True, False])
        assert not mixed.passed
        assert [result.name for result in mixed.failures()] == ["i1"]

    def test_fingerprint_is_hashable_and_order_insensitive(self):
        print_a = self._outcome([True]).fingerprint()
        hash(print_a)  # must be usable as a set/dict member
        reordered = ScenarioOutcome(
            scenario="fake",
            config=SMOKE,
            invariants=[],
            per_tenant={"tenant0": {"nested": {"a": 1, "b": 2}, "requests": 1}},
        )
        assert print_a == reordered.fingerprint()


class TestScenarioHooks:
    def test_default_hooks_are_identity(self):
        scenario = Scenario()
        assert scenario.adjust(SMOKE) is SMOKE
        events = [("request", 0.0, None)]
        assert scenario.transform_trace(None, events, SMOKE) is events


class TestSmokeRuns:
    def test_multi_tenant_smoke(self):
        outcome = run_scenario("multi_tenant", SMOKE)
        assert outcome.passed, [str(r) for r in outcome.failures()]
        assert len(outcome.per_tenant) == SMOKE.num_tenants
        totals = outcome.totals()
        assert totals["requests"] == SMOKE.num_tenants * SMOKE.requests_per_tenant
        assert totals["cross_tenant_cache_hits"] == 0
        assert totals["cross_tenant_doc_serves"] == 0

    def test_common_invariants_present_in_every_arm(self):
        outcome = run_scenario("hot_key_storm", SMOKE)
        names = {result.name for result in outcome.invariants}
        assert {
            "zero_cross_tenant_cache_serves",
            "zero_cross_tenant_doc_serves",
            "index_id_ranges_disjoint",
            "tenant_counters_sum_to_global",
            "zero_dead_document_serves",
        } <= names

    def test_single_tenant_arms_pin_num_tenants(self):
        for name in (
            "hot_key_storm",
            "churn_storm",
            "cold_restart",
            "cold_restart_persistent",
            "vocab_drift",
        ):
            assert SCENARIOS[name].adjust(SMOKE).num_tenants == 1

    def test_runner_accepts_default_config(self):
        runner = ScenarioRunner(get_scenario("multi_tenant"), SMOKE)
        outcome = runner.run()
        assert outcome.scenario == "multi_tenant"
        # the runner keeps the judged tenants around for post-hoc audits
        assert len(runner.tenants) == SMOKE.num_tenants

    def test_run_scenario_defaults_to_base_config(self):
        # default config is the acceptance-scale one; just check plumbing
        # with an explicit smoke config object equal to a scaled default
        outcome = run_scenario("churn_storm", SMOKE)
        assert outcome.config.requests_per_tenant == SMOKE.requests_per_tenant
        assert outcome.passed, [str(r) for r in outcome.failures()]
