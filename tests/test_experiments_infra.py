"""Experiment infrastructure: scales, rendering, results (no heavy runs)."""

import numpy as np
import pytest

from repro.experiments import DEFAULT, SMALL, ExperimentResult, ascii_table, render_heatmap, render_series
from repro.experiments import table2
from repro.experiments.table5 import PAPER_TABLE_5


class TestScales:
    def test_presets_distinct(self):
        assert SMALL.name != DEFAULT.name
        assert DEFAULT.num_sessions > SMALL.num_sessions

    def test_frozen(self):
        with pytest.raises(Exception):
            SMALL.num_sessions = 1


class TestRendering:
    def test_ascii_table_alignment(self):
        out = ascii_table(["a", "metric"], [["x", 1.5], ["longer", 2.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) <= len(lines[1]) for line in lines)
        assert "1.5000" in out

    def test_ascii_table_custom_format(self):
        out = ascii_table(["v"], [[1.23456]], float_format="{:.1f}")
        assert "1.2" in out

    def test_render_series_endpoints(self):
        out = render_series("loss", [1, 2, 3], [3.0, 2.0, 1.0])
        assert "first=3" in out and "last=1" in out

    def test_render_series_empty(self):
        assert "(no data)" in render_series("x", [], [])

    def test_render_series_constant(self):
        out = render_series("flat", [1, 2], [1.0, 1.0])
        assert "first=1" in out

    def test_render_series_downsamples(self):
        out = render_series("long", list(range(500)), list(np.linspace(0, 1, 500)), width=20)
        assert len(out) < 120

    def test_render_heatmap_shape_check(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros((2, 2)), ["a"], ["b", "c"])

    def test_render_heatmap_output(self):
        out = render_heatmap(np.array([[0.0, 1.0], [0.5, 0.5]]), ["q1", "q2"], ["t1", "t2"])
        lines = out.splitlines()
        assert len(lines) == 3
        assert "t1" in lines[1] or "t1" in lines[0] + lines[1]


class TestExperimentResult:
    def test_render_includes_id_and_notes(self):
        result = ExperimentResult(
            experiment_id="tableX", title="demo", measured={}, rendered="body", notes="hi"
        )
        out = result.render()
        assert "tableX" in out
        assert "body" in out
        assert "note: hi" in out


class TestCheapExperiments:
    def test_table2_runs_without_context(self):
        result = table2.run(SMALL)
        assert result.paper["query_to_title"]["transformer_layers"] == 4
        assert "hyperparameter" in result.rendered

    def test_table5_reference_values(self):
        assert PAPER_TABLE_5["decoder"]["transformer"] == 67.5
        assert PAPER_TABLE_5["encoder"]["transformer"] == 3.5
