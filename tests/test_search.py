"""Inverted index, syntax trees, the merge optimization, and the engine."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.search import (
    AndNode,
    BM25Ranker,
    InvertedIndex,
    OrNode,
    SearchConfig,
    SearchEngine,
    TermNode,
    TermOverlapRanker,
    build_tree,
    make_ranker,
    merge_queries,
    tree_size,
)


@pytest.fixture()
def index():
    idx = InvertedIndex()
    docs = {
        0: ["red", "men", "sock"],
        1: ["red", "men", "breathable", "low-cut-sock"],
        2: ["red", "men", "anklet"],
        3: ["blue", "women", "sock"],
        4: ["red", "women", "sock"],
    }
    for doc_id, tokens in docs.items():
        idx.add_document(doc_id, tokens)
    return idx


class TestInvertedIndex:
    def test_lookup(self, index):
        result = index.lookup("red")
        assert result.doc_ids == {0, 1, 2, 4}
        assert result.postings_accessed == 4

    def test_lookup_unknown_token(self, index):
        result = index.lookup("zzz")
        assert result.doc_ids == set()
        assert result.postings_accessed == 0

    def test_intersect(self, index):
        result = index.intersect(["red", "men"])
        assert result.doc_ids == {0, 1, 2}

    def test_intersect_empty_token_list_matches_all(self, index):
        assert index.intersect([]).doc_ids == {0, 1, 2, 3, 4}

    def test_intersect_orders_cheapest_first(self, index):
        """Selective-first evaluation: 'anklet' (1 posting) before 'red' (4)."""
        result = index.intersect(["red", "anklet"])
        assert result.doc_ids == {2}
        assert result.postings_accessed == 1 + 4

    def test_duplicate_doc_rejected(self, index):
        with pytest.raises(ValueError):
            index.add_document(0, ["again"])

    def test_document_roundtrip(self, index):
        assert index.document(0) == ("red", "men", "sock")

    def test_duplicate_tokens_single_posting(self):
        idx = InvertedIndex()
        idx.add_document(0, ["red", "red", "red"])
        assert idx.postings("red") == [0]


class TestSyntaxTree:
    def test_build_tree_single_term(self):
        tree = build_tree(["sock"])
        assert isinstance(tree, TermNode)
        assert tree_size(tree) == 1

    def test_build_tree_and_of_terms(self):
        tree = build_tree(["red", "men", "sock"])
        assert isinstance(tree, AndNode)
        assert tree_size(tree) == 4

    def test_build_tree_dedupes_terms(self):
        tree = build_tree(["red", "red"])
        assert isinstance(tree, TermNode)

    def test_build_tree_empty_raises(self):
        with pytest.raises(ValueError):
            build_tree([])

    def test_evaluate_and(self, index):
        result = build_tree(["red", "men"]).evaluate(index)
        assert result.doc_ids == {0, 1, 2}

    def test_evaluate_or(self, index):
        tree = OrNode(children=(TermNode("anklet"), TermNode("blue")))
        assert tree.evaluate(index).doc_ids == {2, 3}

    def test_paper_figure5_example(self, index):
        """origin: red&men&sock; g1: red&men&breathable&low-cut-sock;
        g2: red&men&anklet -> red & men & (sock | (breathable & low-cut-sock) | anklet)."""
        queries = [
            ["red", "men", "sock"],
            ["red", "men", "breathable", "low-cut-sock"],
            ["red", "men", "anklet"],
        ]
        merged = merge_queries(queries)
        assert merged.evaluate(index).doc_ids == {0, 1, 2}
        assert merged.terms() == {"red", "men", "sock", "breathable", "low-cut-sock", "anklet"}
        # merged tree far smaller than three separate trees
        separate_nodes = sum(tree_size(build_tree(q)) for q in queries)
        assert tree_size(merged) < separate_nodes

    def test_merge_single_query_is_plain_tree(self, index):
        merged = merge_queries([["red", "men"]])
        assert merged.evaluate(index).doc_ids == build_tree(["red", "men"]).evaluate(index).doc_ids

    def test_merge_with_query_fully_covered_by_common(self, index):
        """If one query is a subset of the common tokens, the OR is vacuous."""
        merged = merge_queries([["red"], ["red", "men"]])
        # union of results: docs with red (query 1) ∪ docs with red&men
        assert merged.evaluate(index).doc_ids == {0, 1, 2, 4}

    def test_merge_disjoint_queries(self, index):
        merged = merge_queries([["anklet"], ["blue"]])
        assert merged.evaluate(index).doc_ids == {2, 3}

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_queries([[]])

    @settings(
        max_examples=60,
        deadline=None,
        # the index fixture is read-only, so sharing it across examples is safe
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        queries=st.lists(
            st.lists(
                st.sampled_from(["red", "men", "sock", "blue", "women", "anklet", "breathable"]),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_property_merge_equals_union_of_individual_retrievals(self, index, queries):
        """Soundness of the Section III-H optimization: the merged tree must
        retrieve EXACTLY the union of per-query retrievals."""
        merged_docs = merge_queries(queries).evaluate(index).doc_ids
        union = set()
        for query in queries:
            union |= build_tree(query).evaluate(index).doc_ids
        assert merged_docs == union


class TestSearchEngine:
    @pytest.fixture(scope="class")
    def engine(self, tiny_market):
        return SearchEngine(tiny_market.catalog)

    def test_search_returns_ranked_docs(self, engine, tiny_market):
        product = tiny_market.catalog.products[0]
        outcome = engine.search(" ".join(product.title_tokens[:2]))
        assert product.product_id in outcome.doc_ids

    def test_rewrites_add_recall(self, engine):
        base = engine.search("senior mobile phone")
        extended = engine.search("senior mobile phone", ["big-button mobile phone"])
        assert set(base.doc_ids) <= set(extended.doc_ids)

    def test_merged_and_separate_agree(self, engine):
        comparison = engine.compare_costs(
            "senior mobile phone", ["big-button mobile phone", "flip mobile phone"]
        )
        assert comparison["postings_ratio"] <= 1.0 + 1e-9

    def test_merge_cheaper_with_shared_tokens(self, engine):
        comparison = engine.compare_costs(
            "senior mobile phone",
            ["senior flip mobile phone", "senior big-button mobile phone"],
        )
        assert comparison["postings_ratio"] < 1.0
        assert comparison["nodes_ratio"] < 1.0

    def test_empty_query_raises(self, engine):
        with pytest.raises(ValueError):
            engine.search("   ")

    def test_max_candidates_cap(self, tiny_market):
        engine = SearchEngine(tiny_market.catalog, SearchConfig(max_candidates=2))
        outcome = engine.search("mobile phone")
        assert len(outcome.doc_ids) <= 2

    def test_ranking_prefers_overlap(self, tiny_market):
        engine = SearchEngine(tiny_market.catalog)
        outcome = engine.search("mobile phone")
        if len(outcome.doc_ids) >= 2:
            first = engine.index.document(outcome.doc_ids[0])
            overlap_first = sum(1 for t in first if t in ("mobile", "phone"))
            last = engine.index.document(outcome.doc_ids[-1])
            overlap_last = sum(1 for t in last if t in ("mobile", "phone"))
            assert overlap_first >= overlap_last


class TestMergeQueriesEdgeCases:
    """Section III-H merge soundness on the shapes rewriters actually emit."""

    def _union(self, index, queries):
        union = set()
        for query in queries:
            union |= build_tree(query).evaluate(index).doc_ids
        return union

    def test_duplicate_rewrites_collapse(self, index):
        queries = [["red", "men", "sock"], ["red", "men", "anklet"], ["red", "men", "anklet"]]
        merged = merge_queries(queries)
        deduped = merge_queries(queries[:2])
        assert merged.evaluate(index).doc_ids == deduped.evaluate(index).doc_ids
        # duplicates must not grow the tree
        assert tree_size(merged) == tree_size(deduped)
        assert merged.evaluate(index).doc_ids == self._union(index, queries)

    def test_single_token_queries(self, index):
        queries = [["red"], ["blue"], ["anklet"]]
        merged = merge_queries(queries)
        assert merged.evaluate(index).doc_ids == self._union(index, queries)

    def test_single_token_query_mixed_with_multi_token(self, index):
        queries = [["sock"], ["red", "men", "sock"]]
        merged = merge_queries(queries)
        # "sock" subsumes the more specific query: exactly the sock docs
        assert merged.evaluate(index).doc_ids == {0, 3, 4}
        assert merged.evaluate(index).doc_ids == self._union(index, queries)

    def test_rewrite_identical_to_query(self, index):
        query = ["red", "men", "sock"]
        merged = merge_queries([query, list(query)])
        single = build_tree(query)
        assert merged.evaluate(index).doc_ids == single.evaluate(index).doc_ids
        # an identical rewrite is free: same tree size, same postings cost
        assert tree_size(merged) == tree_size(single)
        assert (
            merged.evaluate(index).postings_accessed
            == single.evaluate(index).postings_accessed
        )

    def test_rewrite_reordered_tokens_identical(self, index):
        """Token order never matters — AND queries are sets of terms."""
        merged = merge_queries([["red", "men", "sock"], ["sock", "red", "men"]])
        assert tree_size(merged) == tree_size(build_tree(["red", "men", "sock"]))

    @pytest.mark.parametrize(
        "queries",
        [
            [["red", "men", "sock"], ["red", "men", "anklet"], ["red", "men", "anklet"]],
            [["red"], ["blue"], ["anklet"]],
            [["red", "men", "sock"], ["red", "men", "sock"]],
            [["sock"], ["red", "men", "sock"]],
        ],
        ids=["duplicate-rewrite", "single-token", "identical-rewrite", "subsumed"],
    )
    def test_merged_equals_separate_doc_sets(self, index, queries):
        """The merged tree and N separate trees retrieve the same docs."""
        merged_docs = merge_queries(queries).evaluate(index).doc_ids
        assert merged_docs == self._union(index, queries)


class TestRankers:
    @pytest.fixture()
    def market_engine(self, tiny_market):
        return SearchEngine(tiny_market.catalog, SearchConfig(ranker="bm25"))

    def test_make_ranker_unknown_name(self):
        with pytest.raises(ValueError):
            make_ranker("pagerank")

    def test_overlap_rank_matches_scalar_scores(self, index):
        ranker = TermOverlapRanker()
        candidates = index.all_doc_ids()
        ranked = ranker.rank(index, ["red", "men"], candidates, k=5)
        resorted = sorted(
            candidates.tolist(),
            key=lambda d: (-ranker.score_doc(index, ["red", "men"], d), d),
        )
        assert ranked == resorted[:5]

    def test_overlap_counts_repeated_title_tokens(self):
        idx = InvertedIndex()
        idx.add_document(0, ["phone", "case"])
        idx.add_document(1, ["phone", "phone", "case"])
        ranker = TermOverlapRanker()
        assert ranker.rank(idx, ["phone"], idx.all_doc_ids(), k=2) == [1, 0]

    def test_bm25_vectorized_equals_scalar(self, market_engine):
        """The vectorized scoring path and the scalar mirror must agree."""
        engine = market_engine
        ranker = engine.ranker
        outcome = engine.search("mobile phone")
        tokens = ["mobile", "phone"]
        resorted = sorted(
            outcome.doc_ids,
            key=lambda d: (-ranker.score_doc(engine.index, tokens, d), d),
        )
        assert outcome.doc_ids == resorted

    def test_bm25_prefers_rarer_term(self):
        idx = InvertedIndex()
        for doc_id in range(10):
            idx.add_document(doc_id, ["common", "filler"])
        idx.add_document(10, ["common", "rare"])
        ranker = BM25Ranker()
        ranked = ranker.rank(idx, ["common", "rare"], idx.all_doc_ids(), k=3)
        assert ranked[0] == 10

    def test_bm25_bounded_k(self, market_engine):
        engine = market_engine
        full = engine.search("mobile phone")
        capped = SearchEngine(
            engine.catalog,
            SearchConfig(ranker="bm25", max_candidates=3),
            index=engine.index,
        ).search("mobile phone")
        assert capped.doc_ids == full.doc_ids[:3]

    def test_rank_empty_candidates(self, index):
        import numpy as np

        for ranker in (TermOverlapRanker(), BM25Ranker()):
            assert ranker.rank(index, ["red"], np.empty(0, dtype=np.int64), k=5) == []


class TestIncrementalIndex:
    def test_remove_document(self, index):
        index.remove_document(0)
        assert 0 not in index
        assert index.lookup("sock").doc_ids == {3, 4}
        assert len(index) == 4

    def test_remove_unknown_raises(self, index):
        with pytest.raises(KeyError):
            index.remove_document(99)

    def test_out_of_order_add_keeps_postings_sorted(self):
        idx = InvertedIndex()
        for doc_id in (5, 1, 9, 3):
            idx.add_document(doc_id, ["tok"])
        assert idx.postings("tok") == [1, 3, 5, 9]
        assert idx.postings_array("tok").tolist() == [1, 3, 5, 9]

    def test_add_after_remove_roundtrip(self, index):
        index.remove_document(2)
        index.add_document(2, ["red", "men", "anklet"])
        assert index.lookup("anklet").doc_ids == {2}

    def test_stats_track_churn(self):
        idx = InvertedIndex()
        idx.add_document(0, ["a", "b"])
        idx.add_document(1, ["a", "b", "c", "d"])
        assert idx.stats().num_docs == 2
        assert idx.avg_doc_length == 3.0
        idx.remove_document(1)
        stats = idx.stats()
        assert stats.num_docs == 1
        assert stats.document_frequency("c") == 0
        assert idx.avg_doc_length == 2.0

    def test_array_cache_invalidated_on_write(self):
        idx = InvertedIndex()
        idx.add_document(0, ["x"])
        before = idx.postings_array("x")
        idx.add_document(1, ["x"])
        assert idx.postings_array("x").tolist() == [0, 1]
        assert before.tolist() == [0]  # old snapshot untouched
