"""Inverted index, syntax trees, the merge optimization, and the engine."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.search import (
    AndNode,
    InvertedIndex,
    OrNode,
    SearchConfig,
    SearchEngine,
    TermNode,
    build_tree,
    merge_queries,
    tree_size,
)


@pytest.fixture()
def index():
    idx = InvertedIndex()
    docs = {
        0: ["red", "men", "sock"],
        1: ["red", "men", "breathable", "low-cut-sock"],
        2: ["red", "men", "anklet"],
        3: ["blue", "women", "sock"],
        4: ["red", "women", "sock"],
    }
    for doc_id, tokens in docs.items():
        idx.add_document(doc_id, tokens)
    return idx


class TestInvertedIndex:
    def test_lookup(self, index):
        result = index.lookup("red")
        assert result.doc_ids == {0, 1, 2, 4}
        assert result.postings_accessed == 4

    def test_lookup_unknown_token(self, index):
        result = index.lookup("zzz")
        assert result.doc_ids == set()
        assert result.postings_accessed == 0

    def test_intersect(self, index):
        result = index.intersect(["red", "men"])
        assert result.doc_ids == {0, 1, 2}

    def test_intersect_empty_token_list_matches_all(self, index):
        assert index.intersect([]).doc_ids == {0, 1, 2, 3, 4}

    def test_intersect_orders_cheapest_first(self, index):
        """Selective-first evaluation: 'anklet' (1 posting) before 'red' (4)."""
        result = index.intersect(["red", "anklet"])
        assert result.doc_ids == {2}
        assert result.postings_accessed == 1 + 4

    def test_duplicate_doc_rejected(self, index):
        with pytest.raises(ValueError):
            index.add_document(0, ["again"])

    def test_document_roundtrip(self, index):
        assert index.document(0) == ("red", "men", "sock")

    def test_duplicate_tokens_single_posting(self):
        idx = InvertedIndex()
        idx.add_document(0, ["red", "red", "red"])
        assert idx.postings("red") == [0]


class TestSyntaxTree:
    def test_build_tree_single_term(self):
        tree = build_tree(["sock"])
        assert isinstance(tree, TermNode)
        assert tree_size(tree) == 1

    def test_build_tree_and_of_terms(self):
        tree = build_tree(["red", "men", "sock"])
        assert isinstance(tree, AndNode)
        assert tree_size(tree) == 4

    def test_build_tree_dedupes_terms(self):
        tree = build_tree(["red", "red"])
        assert isinstance(tree, TermNode)

    def test_build_tree_empty_raises(self):
        with pytest.raises(ValueError):
            build_tree([])

    def test_evaluate_and(self, index):
        result = build_tree(["red", "men"]).evaluate(index)
        assert result.doc_ids == {0, 1, 2}

    def test_evaluate_or(self, index):
        tree = OrNode(children=(TermNode("anklet"), TermNode("blue")))
        assert tree.evaluate(index).doc_ids == {2, 3}

    def test_paper_figure5_example(self, index):
        """origin: red&men&sock; g1: red&men&breathable&low-cut-sock;
        g2: red&men&anklet -> red & men & (sock | (breathable & low-cut-sock) | anklet)."""
        queries = [
            ["red", "men", "sock"],
            ["red", "men", "breathable", "low-cut-sock"],
            ["red", "men", "anklet"],
        ]
        merged = merge_queries(queries)
        assert merged.evaluate(index).doc_ids == {0, 1, 2}
        assert merged.terms() == {"red", "men", "sock", "breathable", "low-cut-sock", "anklet"}
        # merged tree far smaller than three separate trees
        separate_nodes = sum(tree_size(build_tree(q)) for q in queries)
        assert tree_size(merged) < separate_nodes

    def test_merge_single_query_is_plain_tree(self, index):
        merged = merge_queries([["red", "men"]])
        assert merged.evaluate(index).doc_ids == build_tree(["red", "men"]).evaluate(index).doc_ids

    def test_merge_with_query_fully_covered_by_common(self, index):
        """If one query is a subset of the common tokens, the OR is vacuous."""
        merged = merge_queries([["red"], ["red", "men"]])
        # union of results: docs with red (query 1) ∪ docs with red&men
        assert merged.evaluate(index).doc_ids == {0, 1, 2, 4}

    def test_merge_disjoint_queries(self, index):
        merged = merge_queries([["anklet"], ["blue"]])
        assert merged.evaluate(index).doc_ids == {2, 3}

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_queries([[]])

    @settings(
        max_examples=60,
        deadline=None,
        # the index fixture is read-only, so sharing it across examples is safe
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        queries=st.lists(
            st.lists(
                st.sampled_from(["red", "men", "sock", "blue", "women", "anklet", "breathable"]),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_property_merge_equals_union_of_individual_retrievals(self, index, queries):
        """Soundness of the Section III-H optimization: the merged tree must
        retrieve EXACTLY the union of per-query retrievals."""
        merged_docs = merge_queries(queries).evaluate(index).doc_ids
        union = set()
        for query in queries:
            union |= build_tree(query).evaluate(index).doc_ids
        assert merged_docs == union


class TestSearchEngine:
    @pytest.fixture(scope="class")
    def engine(self, tiny_market):
        return SearchEngine(tiny_market.catalog)

    def test_search_returns_ranked_docs(self, engine, tiny_market):
        product = tiny_market.catalog.products[0]
        outcome = engine.search(" ".join(product.title_tokens[:2]))
        assert product.product_id in outcome.doc_ids

    def test_rewrites_add_recall(self, engine):
        base = engine.search("senior mobile phone")
        extended = engine.search("senior mobile phone", ["big-button mobile phone"])
        assert set(base.doc_ids) <= set(extended.doc_ids)

    def test_merged_and_separate_agree(self, engine):
        comparison = engine.compare_costs(
            "senior mobile phone", ["big-button mobile phone", "flip mobile phone"]
        )
        assert comparison["postings_ratio"] <= 1.0 + 1e-9

    def test_merge_cheaper_with_shared_tokens(self, engine):
        comparison = engine.compare_costs(
            "senior mobile phone",
            ["senior flip mobile phone", "senior big-button mobile phone"],
        )
        assert comparison["postings_ratio"] < 1.0
        assert comparison["nodes_ratio"] < 1.0

    def test_empty_query_raises(self, engine):
        with pytest.raises(ValueError):
            engine.search("   ")

    def test_max_candidates_cap(self, tiny_market):
        engine = SearchEngine(tiny_market.catalog, SearchConfig(max_candidates=2))
        outcome = engine.search("mobile phone")
        assert len(outcome.doc_ids) <= 2

    def test_ranking_prefers_overlap(self, tiny_market):
        engine = SearchEngine(tiny_market.catalog)
        outcome = engine.search("mobile phone")
        if len(outcome.doc_ids) >= 2:
            first = engine.index.document(outcome.doc_ids[0])
            overlap_first = sum(1 for t in first if t in ("mobile", "phone"))
            last = engine.index.document(outcome.doc_ids[-1])
            overlap_last = sum(1 for t in last if t in ("mobile", "phone"))
            assert overlap_first >= overlap_last
