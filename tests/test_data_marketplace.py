"""Marketplace assembly: vocabulary coverage, corpora, determinism, validation."""

import numpy as np
import pytest

from repro.data import MarketplaceConfig, generate_marketplace
from repro.data.catalog import (
    AUDIENCE_ALIASES,
    CATEGORY_SPECS,
    CatalogConfig,
    VAGUE_WORDS,
)
from repro.data.clicklog import ClickLogConfig


class TestVocabularyCoverage:
    def test_all_domain_tokens_in_vocab(self, tiny_market):
        vocab = tiny_market.vocab
        for aliases in AUDIENCE_ALIASES.values():
            for alias in aliases:
                assert alias in vocab, alias
        for word in VAGUE_WORDS:
            assert word in vocab, word
        for spec in CATEGORY_SPECS.values():
            for token in spec.canonical + spec.colloquial + spec.brands:
                assert token in vocab, token

    def test_no_unk_when_encoding_catalog_titles(self, tiny_market):
        vocab = tiny_market.vocab
        for product in tiny_market.catalog.products[:50]:
            ids = vocab.encode(list(product.title_tokens), add_eos=False)
            assert vocab.unk_id not in ids


class TestCorpora:
    def test_forward_backward_are_mirrors(self, tiny_market):
        fwd = tiny_market.forward_corpus
        bwd = tiny_market.backward_corpus
        assert len(fwd) == len(bwd)
        # forward source tokens == backward target tokens (modulo SOS)
        assert fwd.sources[0] == bwd.targets[0][1:]

    def test_split_sizes(self, tiny_market):
        total = len(tiny_market.train_pairs) + len(tiny_market.eval_pairs)
        assert total == len(tiny_market.click_log.pairs)
        assert len(tiny_market.eval_pairs) > 0

    def test_synonym_pairs_available(self, tiny_market):
        assert len(tiny_market.synonym_pairs) > 10

    def test_q2q_corpus_encodes(self, tiny_market):
        corpus = tiny_market.q2q_corpus
        assert len(corpus) == len(tiny_market.synonym_pairs)


class TestDeterminism:
    def test_same_seed_same_marketplace(self):
        config = MarketplaceConfig(
            catalog=CatalogConfig(products_per_category=4),
            clicks=ClickLogConfig(num_sessions=300, intent_pool_size=40),
            seed=11,
        )
        a = generate_marketplace(config)
        b = generate_marketplace(
            MarketplaceConfig(
                catalog=CatalogConfig(products_per_category=4),
                clicks=ClickLogConfig(num_sessions=300, intent_pool_size=40),
                seed=11,
            )
        )
        assert a.click_log.pairs == b.click_log.pairs
        assert a.vocab.tokens() == b.vocab.tokens()

    def test_seed_propagates_to_subconfigs(self):
        config = MarketplaceConfig(seed=5)
        assert config.catalog.seed == 5
        assert config.clicks.seed == 6


class TestValidation:
    """Degenerate sizes fail loudly at construction, not deep in a replay."""

    def test_rejects_non_positive_products_per_category(self):
        with pytest.raises(ValueError, match="products_per_category"):
            MarketplaceConfig(catalog=CatalogConfig(products_per_category=0))

    def test_rejects_non_positive_num_sessions(self):
        with pytest.raises(ValueError, match="num_sessions"):
            MarketplaceConfig(clicks=ClickLogConfig(num_sessions=0))

    def test_rejects_non_positive_intent_pool(self):
        with pytest.raises(ValueError, match="intent_pool_size"):
            MarketplaceConfig(clicks=ClickLogConfig(intent_pool_size=-1))

    def test_rejects_bad_eval_fraction(self):
        with pytest.raises(ValueError, match="eval_fraction"):
            MarketplaceConfig(eval_fraction=1.0)
        with pytest.raises(ValueError, match="eval_fraction"):
            MarketplaceConfig(eval_fraction=-0.1)

    def test_rejects_non_positive_vocab_min_freq(self):
        with pytest.raises(ValueError, match="vocab_min_freq"):
            MarketplaceConfig(vocab_min_freq=0)

    def test_valid_config_constructs(self):
        config = MarketplaceConfig(
            catalog=CatalogConfig(products_per_category=1),
            clicks=ClickLogConfig(num_sessions=1, intent_pool_size=1),
        )
        assert config.eval_fraction == 0.1
