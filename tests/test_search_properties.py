"""Property-based randomized tests for the retrieval primitives.

Seeded fuzzing (no fixed examples to overfit): the galloping-skip
intersection and k-way union are checked against naive set-based
oracles, and the vectorized bounded top-k selection against a full
``(-score, doc_id)`` sort, across hundreds of generated cases spanning
empty inputs, disjoint/dense overlap, duplicate scores at the threshold,
and every interesting ``k`` regime.
"""

from __future__ import annotations

import numpy as np

from repro.search.postings import (
    EMPTY_POSTINGS,
    as_postings_array,
    intersect_sorted,
    union_sorted,
)
from repro.search.ranking import top_k_by_score

#: generated cases per property (the satellite bar is 200+ overall)
NUM_CASES = 250


def random_postings(rng: np.random.Generator, universe: int) -> np.ndarray:
    """A sorted, duplicate-free int64 doc-id vector (possibly empty)."""
    size = int(rng.integers(0, 40))
    if size == 0:
        return EMPTY_POSTINGS
    return np.unique(rng.integers(0, universe, size=size).astype(np.int64))


class TestIntersectionProperties:
    def test_matches_set_oracle_across_generated_cases(self):
        rng = np.random.default_rng(1234)
        non_trivial = 0
        for case in range(NUM_CASES):
            # Small universes force dense overlap, large ones sparse/disjoint.
            universe = int(rng.choice([5, 30, 1000]))
            a = random_postings(rng, universe)
            b = random_postings(rng, universe)
            got = intersect_sorted(a, b)
            expected = sorted(set(a.tolist()) & set(b.tolist()))
            assert got.tolist() == expected, f"case {case}: {a} & {b}"
            assert got.dtype == np.int64
            if len(expected) > 0:
                non_trivial += 1
        # The generator actually produced overlapping cases, not just
        # trivially-empty intersections.
        assert non_trivial > NUM_CASES // 4

    def test_symmetry_and_idempotence(self):
        rng = np.random.default_rng(99)
        for _ in range(NUM_CASES // 5):
            a = random_postings(rng, 50)
            b = random_postings(rng, 50)
            assert intersect_sorted(a, b).tolist() == intersect_sorted(b, a).tolist()
            assert intersect_sorted(a, a).tolist() == a.tolist()

    def test_result_is_subset_of_smaller_input(self):
        rng = np.random.default_rng(7)
        for _ in range(NUM_CASES // 5):
            a = random_postings(rng, 40)
            b = random_postings(rng, 40)
            got = set(intersect_sorted(a, b).tolist())
            assert got <= set(a.tolist())
            assert got <= set(b.tolist())


class TestUnionProperties:
    def test_matches_set_oracle_across_generated_cases(self):
        rng = np.random.default_rng(4321)
        for case in range(NUM_CASES):
            universe = int(rng.choice([5, 30, 1000]))
            lists = [
                random_postings(rng, universe)
                for _ in range(int(rng.integers(0, 5)))
            ]
            got = union_sorted(lists)
            expected = sorted(set().union(*(arr.tolist() for arr in lists)))
            assert got.tolist() == expected, f"case {case}"
            assert got.dtype == np.int64

    def test_union_absorbs_intersection(self):
        # A ∪ (A ∩ B) == A for every generated pair.
        rng = np.random.default_rng(55)
        for _ in range(NUM_CASES // 5):
            a = random_postings(rng, 30)
            b = random_postings(rng, 30)
            assert union_sorted([a, intersect_sorted(a, b)]).tolist() == a.tolist()

    def test_empty_inputs(self):
        assert union_sorted([]).tolist() == []
        assert union_sorted([EMPTY_POSTINGS, EMPTY_POSTINGS]).tolist() == []
        assert intersect_sorted(EMPTY_POSTINGS, as_postings_array([1, 2])).tolist() == []


def topk_oracle(doc_ids: np.ndarray, scores: np.ndarray, k: int):
    """Full sort by ``(-score, doc_id)`` truncated to k — the spec."""
    order = sorted(zip(scores.tolist(), doc_ids.tolist()), key=lambda p: (-p[0], p[1]))
    return order[: max(k, 0)]


class TestTopKProperties:
    def test_matches_full_sort_across_generated_cases(self):
        rng = np.random.default_rng(2024)
        threshold_tie_cases = 0
        for case in range(NUM_CASES):
            n = int(rng.integers(0, 60))
            doc_ids = rng.permutation(
                rng.choice(10_000, size=n, replace=False)
            ).astype(np.int64)
            # A tiny score alphabet forces heavy duplicate scores, so the
            # partition threshold almost always lands on a tie.
            alphabet = rng.normal(size=int(rng.choice([2, 3, 50])))
            scores = rng.choice(alphabet, size=n) if n else np.empty(0)
            for k in (0, 1, max(1, n // 2), n, n + 5):
                got = top_k_by_score(doc_ids, scores, k)
                assert got == topk_oracle(doc_ids, scores, k), (
                    f"case {case}, k={k}"
                )
            if n > 2 and len(np.unique(scores)) < n:
                threshold_tie_cases += 1
        assert threshold_tie_cases > NUM_CASES // 4

    def test_scores_survive_bit_for_bit(self):
        # Selection must report the exact IEEE doubles it was given, not
        # recomputed or rounded ones.
        rng = np.random.default_rng(77)
        doc_ids = np.arange(20, dtype=np.int64)
        scores = rng.normal(size=20) * 1e-12
        by_doc = dict(zip(doc_ids.tolist(), scores.tolist()))
        for score, doc_id in top_k_by_score(doc_ids, scores, 7):
            assert score == by_doc[doc_id]

    def test_prefix_property(self):
        # top-k is always a prefix of top-(k+1) under the same ordering.
        rng = np.random.default_rng(31)
        for _ in range(NUM_CASES // 5):
            n = int(rng.integers(1, 40))
            doc_ids = rng.choice(5_000, size=n, replace=False).astype(np.int64)
            scores = rng.choice(rng.normal(size=3), size=n)
            k = int(rng.integers(1, n + 1))
            smaller = top_k_by_score(doc_ids, scores, k)
            larger = top_k_by_score(doc_ids, scores, k + 1)
            assert larger[:k] == smaller
