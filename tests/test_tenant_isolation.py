"""Property-based tenant-isolation tests (seeded, 200+ generated cases).

Two tenants share one physical :class:`~repro.core.cache.RewriteCache`
through namespaced views and run separate sharded indexes over disjoint
document-id ranges.  A seeded random walk interleaves cache writes,
reads, deletes and index churn (listings/delistings) across both tenants
and asserts, at every step, the isolation contract the scenario library
pins end to end:

* a cache view never returns a value the *other* tenant wrote, even for
  the textually identical query — reads either miss or return a value
  tagged with the reading tenant's own name;
* per-view ``stored_at`` / ``expiring_within`` never surface the other
  namespace's entries, while the physical store accounts for both;
* each index only ever holds (and retrieves) documents inside its
  tenant's id range, under arbitrary interleaved add/remove churn.

No fixed examples to overfit — every case is generated from the seeded
stream, so a regression in key prefixing or id-range allocation fails on
hundreds of distinct interleavings at once.
"""

from __future__ import annotations

import numpy as np

from repro.core import RewriteCache
from repro.data.catalog import CatalogConfig, CatalogGenerator
from repro.search import SearchConfig, ShardedSearchEngine

#: generated interleaving steps (the satellite bar is 200+ cases)
NUM_CASES = 300
STRIDE = 1_000_000
QUERY_POOL = [f"query {n}" for n in range(12)]


def _build_engine(index: int) -> ShardedSearchEngine:
    catalog = CatalogGenerator(
        CatalogConfig(products_per_category=2, product_id_base=index * STRIDE)
    ).generate()
    return ShardedSearchEngine(
        catalog,
        SearchConfig(ranker="bm25"),
        num_shards=2,
        parallel=False,
    )


class TestTenantIsolationProperties:
    def test_random_interleavings_never_leak(self):
        rng = np.random.default_rng(20210414)
        physical = RewriteCache(capacity=64, shards=2, ttl_seconds=None)
        views = [physical.tenant_view("alpha"), physical.tenant_view("beta")]
        engines = [_build_engine(0), _build_engine(1)]
        #: ground truth per tenant: query -> tagged value we last wrote
        written: list[dict[str, list[str]]] = [{}, {}]
        next_id = [STRIDE - 1, 2 * STRIDE - 1]  # fresh ids, top of each range
        live = [set(engine.document_ids()) for engine in engines]
        cache_ops = churn_ops = 0

        try:
            for case in range(NUM_CASES):
                tenant = int(rng.integers(0, 2))
                other = 1 - tenant
                op = rng.choice(["put", "get", "delete", "add", "remove", "search"])
                query = str(rng.choice(QUERY_POOL))
                if op == "put":
                    # Both tenants write the SAME query text; the value is
                    # tagged so a cross-namespace read is unambiguous.
                    value = [f"tenant{tenant} rewrite {case}"]
                    views[tenant].put(query, value)
                    written[tenant][query] = value
                    cache_ops += 1
                elif op == "get":
                    got = views[tenant].get(query)
                    expected = written[tenant].get(query)
                    assert got == expected, f"case {case}: view returned {got}"
                    cache_ops += 1
                elif op == "delete":
                    views[tenant].delete(query)
                    written[tenant].pop(query, None)
                    cache_ops += 1
                elif op == "add":
                    engines[tenant].add_document(
                        next_id[tenant], ("isolation", "probe", f"t{tenant}")
                    )
                    live[tenant].add(next_id[tenant])
                    next_id[tenant] -= 1
                    churn_ops += 1
                elif op == "remove" and live[tenant]:
                    victim = int(rng.choice(sorted(live[tenant])))
                    engines[tenant].remove_document(victim)
                    live[tenant].discard(victim)
                    churn_ops += 1
                else:  # search (or a remove on an empty index)
                    outcome = engines[tenant].search("isolation probe")
                    lo = tenant * STRIDE
                    assert all(
                        lo <= doc_id < lo + STRIDE for doc_id in outcome.doc_ids
                    ), f"case {case}: foreign doc in results"

                # -- invariants re-checked after EVERY step ----------------
                # 1. no cross-view visibility, either direction, any query
                for probe in QUERY_POOL:
                    mine = views[tenant].get(probe)
                    assert mine == written[tenant].get(probe)
                    theirs = views[other].get(probe)
                    assert theirs == written[other].get(probe)
                # 2. per-view metadata stays namespaced; the physical
                #    store sees the union of both tenants' entries
                for side in (0, 1):
                    for query_text, value in written[side].items():
                        assert views[side].stored_at(query_text) is not None
                        assert views[side].get(query_text) == value
                assert len(physical) == len(written[0]) + len(written[1])
                # 3. indexes hold exactly their own live ids, ranges disjoint
                ids0, ids1 = set(engines[0].document_ids()), set(
                    engines[1].document_ids()
                )
                assert ids0 == live[0] and ids1 == live[1]
                assert not (ids0 & ids1)
                assert all(doc_id < STRIDE for doc_id in ids0)
                assert all(STRIDE <= doc_id < 2 * STRIDE for doc_id in ids1)
        finally:
            for engine in engines:
                engine.close()

        # The walk actually exercised both subsystems, not one branch.
        assert cache_ops >= 50
        assert churn_ops >= 50

    def test_expiring_within_is_namespaced(self):
        clock = {"now": 0.0}
        physical = RewriteCache(
            capacity=32, shards=2, ttl_seconds=5.0, clock=lambda: clock["now"]
        )
        alpha = physical.tenant_view("alpha")
        beta = physical.tenant_view("beta")
        alpha.put("shared query", ["alpha value"])
        beta.put("shared query", ["beta value"])
        clock["now"] = 4.5
        assert alpha.expiring_within(1.0) == ["shared query"]
        assert beta.expiring_within(1.0) == ["shared query"]
        # deleting one tenant's entry must not disturb the other's
        assert alpha.delete("shared query")
        assert alpha.get("shared query") is None
        assert beta.get("shared query") == ["beta value"]
