"""Cross-entropy losses: correctness, padding, label smoothing."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import cross_entropy, sequence_cross_entropy


class TestCrossEntropy:
    def test_matches_manual(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 5))
        targets = np.array([0, 2, 4, 1])
        loss = cross_entropy(Tensor(logits), targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(4), targets].mean()
        np.testing.assert_allclose(float(loss.data), expected, atol=1e-12)

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2]))
        assert float(loss.data) < 1e-6

    def test_label_smoothing_increases_confident_loss(self):
        logits = np.full((1, 4), -10.0)
        logits[0, 0] = 10.0
        plain = cross_entropy(Tensor(logits), np.array([0]))
        smoothed = cross_entropy(Tensor(logits), np.array([0]), label_smoothing=0.1)
        assert float(smoothed.data) > float(plain.data)

    def test_gradient_is_softmax_minus_onehot(self):
        rng = np.random.default_rng(0)
        logits_data = rng.normal(size=(3, 4))
        logits = Tensor(logits_data, requires_grad=True)
        targets = np.array([1, 0, 3])
        cross_entropy(logits, targets).backward()
        shifted = logits_data - logits_data.max(axis=1, keepdims=True)
        probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        onehot = np.zeros((3, 4))
        onehot[np.arange(3), targets] = 1.0
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 3.0, atol=1e-10)


class TestSequenceCrossEntropy:
    def test_pad_positions_excluded(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(2, 3, 5)))
        targets = np.array([[1, 2, 0], [3, 0, 0]])  # pad_id = 0
        loss, count = sequence_cross_entropy(logits, targets, pad_id=0)
        assert count == 3

    def test_matches_unpadded_equivalent(self):
        rng = np.random.default_rng(0)
        logits_data = rng.normal(size=(1, 4, 5))
        full_targets = np.array([[1, 2, 3, 4]])
        loss_full, _ = sequence_cross_entropy(Tensor(logits_data), full_targets, pad_id=0)

        padded_logits = np.concatenate([logits_data, rng.normal(size=(1, 2, 5))], axis=1)
        padded_targets = np.array([[1, 2, 3, 4, 0, 0]])
        loss_padded, count = sequence_cross_entropy(
            Tensor(padded_logits), padded_targets, pad_id=0
        )
        assert count == 4
        np.testing.assert_allclose(float(loss_full.data), float(loss_padded.data), atol=1e-12)

    def test_all_pad_raises(self):
        logits = Tensor(np.zeros((1, 2, 4)))
        with pytest.raises(ValueError):
            sequence_cross_entropy(logits, np.zeros((1, 2), dtype=int), pad_id=0)

    def test_perplexity_relationship(self):
        """exp(loss) of a uniform predictor equals the vocab size."""
        vocab = 7
        logits = Tensor(np.zeros((2, 3, vocab)))
        targets = np.ones((2, 3), dtype=int)
        loss, _ = sequence_cross_entropy(logits, targets, pad_id=0)
        np.testing.assert_allclose(np.exp(float(loss.data)), vocab, rtol=1e-9)

    def test_gradients_skip_pad(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)
        targets = np.array([[2, 0, 0]])
        loss, _ = sequence_cross_entropy(logits, targets, pad_id=0)
        loss.backward()
        np.testing.assert_allclose(logits.grad[0, 1:], 0.0, atol=1e-12)
        assert not np.allclose(logits.grad[0, 0], 0.0)
