"""HTTP/1.1 framing unit tests (``repro.gateway.http``).

Feeds raw bytes through an ``asyncio.StreamReader`` — no sockets — and
pins the framing contract: well-formed requests parse, every violation
raises a typed :class:`SchemaError` with the right code, clean EOF is
``None``, and responses render to exact deterministic bytes.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.gateway.http import (
    DEFAULT_MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    HttpRequest,
    read_request,
    render_response,
)
from repro.gateway.schemas import SchemaError


def parse(raw: bytes, **kwargs):
    """Run ``read_request`` over literal wire bytes."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


def parse_error(raw: bytes, **kwargs) -> SchemaError:
    """The SchemaError a byte sequence must raise."""
    with pytest.raises(SchemaError) as excinfo:
        parse(raw, **kwargs)
    return excinfo.value


def post(path: str, body: bytes, *extra_headers: str) -> bytes:
    """Assemble a well-formed POST for the happy-path tests."""
    head = [
        f"POST {path} HTTP/1.1",
        "Host: test",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        *extra_headers,
    ]
    return ("\r\n".join(head) + "\r\n\r\n").encode() + body


class TestRequestParsing:
    def test_get_parses(self):
        request = parse(b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/health"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_post_with_body(self):
        request = parse(post("/v1/rewrite", b'{"query":"q"}'))
        assert request.method == "POST"
        assert request.json() == {"query": "q"}

    def test_query_string_is_stripped_from_path(self):
        request = parse(b"GET /v1/health?verbose=1 HTTP/1.1\r\n\r\n")
        assert request.path == "/v1/health"

    def test_header_names_lowercased_values_stripped(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Thing:   padded \r\n\r\n")
        assert request.headers["x-thing"] == "padded"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_plus_json_content_type_accepted(self):
        raw = post("/v1/rewrite", b"{}").replace(
            b"application/json", b"application/problem+json"
        )
        assert parse(raw).json() == {}

    def test_missing_content_type_defaults_to_json(self):
        body = b'{"query":"q"}'
        raw = (
            b"POST /v1/rewrite HTTP/1.1\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        assert parse(raw).json() == {"query": "q"}


class TestFramingViolations:
    def test_truncated_head_is_bad_request(self):
        assert parse_error(b"GET /v1/health HTT").code == "bad_request"

    def test_malformed_request_line(self):
        assert parse_error(b"GETHTTP/1.1\r\n\r\n").code == "bad_request"
        assert parse_error(b"GET / SMTP/1.0\r\n\r\n").code == "bad_request"

    def test_malformed_header_line(self):
        error = parse_error(b"GET / HTTP/1.1\r\nnot a header\r\n\r\n")
        assert error.code == "bad_request"

    def test_post_without_content_length_is_411(self):
        error = parse_error(b"POST /v1/rewrite HTTP/1.1\r\n\r\n")
        assert error.code == "length_required"

    def test_malformed_content_length(self):
        for value in (b"abc", b"-5", b"1.5"):
            raw = (
                b"POST / HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n"
            )
            assert parse_error(raw).code == "bad_request", value

    def test_declared_body_over_limit_is_413(self):
        raw = (
            b"POST / HTTP/1.1\r\nContent-Type: application/json\r\n"
            b"Content-Length: 999\r\n\r\n"
        )
        assert parse_error(raw, max_body_bytes=100).code == "body_too_large"

    def test_default_body_limit_is_64k(self):
        raw = post("/v1/rewrite", b"x")[:-1].replace(
            b"Content-Length: 1",
            b"Content-Length: " + str(DEFAULT_MAX_BODY_BYTES + 1).encode(),
        )
        assert parse_error(raw).code == "body_too_large"

    def test_non_json_content_type_is_415(self):
        raw = post("/v1/rewrite", b"q=1").replace(
            b"application/json", b"application/x-www-form-urlencoded"
        )
        assert parse_error(raw).code == "unsupported_media_type"

    def test_truncated_body_is_bad_request(self):
        raw = post("/v1/rewrite", b'{"query":"q"}')[:-5]
        assert parse_error(raw).code == "bad_request"

    def test_oversized_head_is_bad_request(self):
        filler = b"X-Pad: " + b"a" * (MAX_HEADER_BYTES + 16) + b"\r\n"
        raw = b"GET / HTTP/1.1\r\n" + filler + b"\r\n"
        assert parse_error(raw).code == "bad_request"


class TestHttpRequest:
    def test_json_rejects_empty_body(self):
        request = HttpRequest("POST", "/", {}, b"")
        with pytest.raises(SchemaError) as excinfo:
            request.json()
        assert excinfo.value.code == "invalid_json"

    def test_json_rejects_garbage(self):
        for body in (b"{", b"not json", b"\xff\xfe"):
            request = HttpRequest("POST", "/", {}, body)
            with pytest.raises(SchemaError) as excinfo:
                request.json()
            assert excinfo.value.code == "invalid_json", body

    def test_keep_alive_default_and_close(self):
        assert HttpRequest("GET", "/", {}, b"").keep_alive is True
        assert (
            HttpRequest("GET", "/", {"connection": "close"}, b"").keep_alive
            is False
        )
        assert (
            HttpRequest("GET", "/", {"connection": "Keep-Alive"}, b"").keep_alive
            is True
        )


class TestRenderResponse:
    def test_exact_bytes(self):
        raw = render_response(200, {"a": 1, "b": [2, 3]})
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Content-Type: application/json" in lines
        assert f"Content-Length: {len(body)}" in lines
        assert "Connection: keep-alive" in lines
        # compact, key-order-preserving JSON — the golden byte form
        assert body == b'{"a":1,"b":[2,3]}'

    def test_reason_phrases_cover_the_error_surface(self):
        for status, phrase in (
            (400, "Bad Request"), (404, "Not Found"),
            (405, "Method Not Allowed"), (411, "Length Required"),
            (413, "Payload Too Large"), (415, "Unsupported Media Type"),
            (429, "Too Many Requests"), (500, "Internal Server Error"),
            (503, "Service Unavailable"),
        ):
            raw = render_response(status, {})
            assert raw.startswith(f"HTTP/1.1 {status} {phrase}\r\n".encode())

    def test_extra_headers_and_close(self):
        raw = render_response(
            429, {}, extra_headers={"Retry-After": "0.050"}, keep_alive=False
        )
        head = raw.split(b"\r\n\r\n")[0].decode("latin-1")
        assert "Retry-After: 0.050" in head
        assert "Connection: close" in head

    def test_body_round_trips_as_json(self):
        payload = {"error": {"code": "not_found", "message": "no route"}}
        raw = render_response(404, payload)
        body = raw.split(b"\r\n\r\n", 1)[1]
        assert json.loads(body) == payload
