"""Documentation hygiene: every doc is reachable, every link resolves.

Walks the markdown link graph from README.md and asserts (1) every file
under ``docs/`` is reachable — no orphaned documentation — and (2) every
relative link along the way points at a file that exists.  CI runs this
as the docs check.
"""

from __future__ import annotations

import pathlib
import re

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"

#: markdown inline links: [text](target), ignoring external/anchor targets
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _local_links(markdown_file: pathlib.Path) -> list[pathlib.Path]:
    links = []
    for target in _LINK.findall(markdown_file.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append((markdown_file.parent / target.split("#")[0]).resolve())
    return links


def _reachable_from_readme() -> tuple[set[pathlib.Path], list[tuple[str, str]]]:
    seen: set[pathlib.Path] = set()
    broken: list[tuple[str, str]] = []
    frontier = [README.resolve()]
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        for target in _local_links(current):
            if not target.exists():
                broken.append((str(current.relative_to(REPO_ROOT)), str(target)))
            elif target.suffix == ".md" and target not in seen:
                frontier.append(target)
    return seen, broken


def test_no_broken_relative_links():
    _, broken = _reachable_from_readme()
    assert not broken, f"broken markdown links: {broken}"


def test_every_doc_reachable_from_readme():
    reachable, _ = _reachable_from_readme()
    docs = set((REPO_ROOT / "docs").glob("**/*.md"))
    orphaned = {str(p.relative_to(REPO_ROOT)) for p in docs - reachable}
    assert not orphaned, (
        f"docs not reachable from README.md: {sorted(orphaned)} — "
        "link them from README.md or another reachable doc"
    )
