"""Repository hygiene: no build/bytecode artifacts under version control.

152 ``__pycache__/*.pyc`` files were once committed alongside the sources
they were compiled from — stale the moment the sources changed, different
per Python version, and noise in every diff.  This test keeps them out
for good: it fails if any tracked path is Python bytecode, a
``__pycache__`` directory member, or another generated artifact the
``.gitignore`` is supposed to catch.  CI runs it as part of the tier-1
suite and as an explicit hygiene step.
"""

from __future__ import annotations

import pathlib
import shutil
import subprocess

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: path fragments that must never be tracked
FORBIDDEN_PARTS = ("__pycache__",)
FORBIDDEN_SUFFIXES = (".pyc", ".pyo", ".pyd", ".so", ".egg-info")


def _tracked_files() -> list[str]:
    if shutil.which("git") is None or not (REPO_ROOT / ".git").exists():
        pytest.skip("not a git checkout")
    listing = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return listing.stdout.splitlines()


def test_no_tracked_bytecode_or_caches():
    offenders = [
        path
        for path in _tracked_files()
        if any(part in pathlib.PurePosixPath(path).parts for part in FORBIDDEN_PARTS)
        or path.endswith(FORBIDDEN_SUFFIXES)
    ]
    assert not offenders, (
        f"{len(offenders)} generated file(s) under version control "
        f"(first few: {offenders[:5]}) — `git rm --cached` them; "
        ".gitignore should already exclude these patterns"
    )


def test_gitignore_covers_pycache():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    assert "__pycache__/" in gitignore
    assert "*.py[cod]" in gitignore
