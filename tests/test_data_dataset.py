"""Padding, batching and corpus containers."""

import numpy as np
import pytest

from repro.data.dataset import BatchIterator, ParallelCorpus, pad_batch, train_eval_split
from repro.text import Vocabulary


@pytest.fixture()
def vocab():
    return Vocabulary(["red", "men", "sock", "shoe", "big", "title", "words"])


class TestPadBatch:
    def test_pads_to_longest(self):
        out = pad_batch([[1, 2], [3]], pad_id=0)
        np.testing.assert_array_equal(out, [[1, 2], [3, 0]])

    def test_max_len_truncates(self):
        out = pad_batch([[1, 2, 3, 4]], pad_id=0, max_len=2)
        np.testing.assert_array_equal(out, [[1, 2]])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            pad_batch([], pad_id=0)

    def test_dtype_is_integer(self):
        assert pad_batch([[1]], pad_id=0).dtype == np.int64


class TestParallelCorpus:
    def test_from_pairs_encoding_conventions(self, vocab):
        pairs = [(("red", "sock"), ("red", "men", "sock"), 3)]
        corpus = ParallelCorpus.from_pairs(pairs, vocab)
        # source: tokens + EOS, no SOS
        assert corpus.sources[0][-1] == vocab.eos_id
        assert corpus.sources[0][0] != vocab.sos_id
        # target: SOS + tokens + EOS
        assert corpus.targets[0][0] == vocab.sos_id
        assert corpus.targets[0][-1] == vocab.eos_id
        assert corpus.weights == [3]

    def test_swap_reverses_direction(self, vocab):
        pairs = [(("red",), ("title", "words"), 1)]
        fwd = ParallelCorpus.from_pairs(pairs, vocab, swap=False)
        bwd = ParallelCorpus.from_pairs(pairs, vocab, swap=True)
        assert len(fwd.sources[0]) == 2  # red + EOS
        assert len(bwd.sources[0]) == 3  # title words + EOS

    def test_length_mismatch_rejected(self, vocab):
        with pytest.raises(ValueError):
            ParallelCorpus(sources=[[1]], targets=[], vocab=vocab)


class TestBatchIterator:
    def _corpus(self, vocab, n=10):
        pairs = [(("red", "sock"), ("red", "men", "sock"), 1)] * n
        return ParallelCorpus.from_pairs(pairs, vocab)

    def test_batch_shapes_align(self, vocab):
        iterator = BatchIterator(self._corpus(vocab), batch_size=4, shuffle=False)
        for batch in iterator:
            assert batch.target_in.shape == batch.target_out.shape
            assert batch.source.shape[0] == batch.target_in.shape[0]

    def test_teacher_forcing_shift(self, vocab):
        iterator = BatchIterator(self._corpus(vocab), batch_size=2, shuffle=False)
        batch = next(iter(iterator))
        # target_in starts with SOS; target_out ends with EOS at same index-1
        assert batch.target_in[0, 0] == vocab.sos_id
        np.testing.assert_array_equal(batch.target_in[0, 1:], batch.target_out[0, :-1])

    def test_covers_whole_corpus(self, vocab):
        corpus = self._corpus(vocab, n=10)
        iterator = BatchIterator(corpus, batch_size=3, shuffle=False)
        assert len(iterator) == 4
        total = sum(batch.source.shape[0] for batch in iterator)
        assert total == 10

    def test_shuffle_is_seeded(self, vocab):
        corpus = ParallelCorpus.from_pairs(
            [((t,), (t, t), 1) for t in ["red", "men", "sock", "shoe", "big"]], vocab
        )
        a = [b.source.tolist() for b in BatchIterator(corpus, 2, rng=np.random.default_rng(5))]
        b = [b.source.tolist() for b in BatchIterator(corpus, 2, rng=np.random.default_rng(5))]
        assert a == b

    def test_sample_batch_size(self, vocab):
        iterator = BatchIterator(self._corpus(vocab), batch_size=4)
        assert iterator.sample_batch().source.shape[0] == 4

    def test_invalid_batch_size(self, vocab):
        with pytest.raises(ValueError):
            BatchIterator(self._corpus(vocab), batch_size=0)


class TestTrainEvalSplit:
    def test_partition(self):
        items = list(range(100))
        train, evaluation = train_eval_split(items, 0.2, np.random.default_rng(0))
        assert len(evaluation) == 20
        assert sorted(train + evaluation) == items

    def test_deterministic(self):
        items = list(range(50))
        a = train_eval_split(items, 0.1, np.random.default_rng(1))
        b = train_eval_split(items, 0.1, np.random.default_rng(1))
        assert a == b

    def test_zero_fraction(self):
        train, evaluation = train_eval_split([1, 2, 3], 0.0)
        assert evaluation == []
        assert train == [1, 2, 3]

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_eval_split([1], 1.0)
