"""Multi-head attention, masks, and transformer blocks."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import MultiHeadAttention, TransformerDecoder, TransformerEncoder
from repro.nn.attention import causal_mask, padding_mask


def _rand(*shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape))


class TestMasks:
    def test_padding_mask_shape_and_values(self):
        ids = np.array([[5, 6, 0], [7, 0, 0]])
        mask = padding_mask(ids, pad_id=0)
        assert mask.shape == (2, 1, 1, 3)
        np.testing.assert_array_equal(mask[0, 0, 0], [False, False, True])
        np.testing.assert_array_equal(mask[1, 0, 0], [False, True, True])

    def test_causal_mask_blocks_future_only(self):
        mask = causal_mask(4)
        assert mask.shape == (1, 1, 4, 4)
        for i in range(4):
            for j in range(4):
                assert mask[0, 0, i, j] == (j > i)


class TestMultiHeadAttention:
    def test_output_shape(self):
        mha = MultiHeadAttention(16, 4, rng=np.random.default_rng(0))
        x = _rand(2, 5, 16)
        assert mha(x, x, x).shape == (2, 5, 16)

    def test_d_model_divisibility_enforced(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_attention_weights_rows_sum_to_one(self):
        mha = MultiHeadAttention(16, 4, rng=np.random.default_rng(0))
        x = _rand(2, 5, 16)
        mha(x, x, x)
        assert mha.last_weights.shape == (2, 4, 5, 5)
        np.testing.assert_allclose(
            mha.last_weights.sum(axis=-1), np.ones((2, 4, 5)), atol=1e-9
        )

    def test_masked_positions_get_zero_weight(self):
        mha = MultiHeadAttention(16, 2, rng=np.random.default_rng(0))
        ids = np.array([[5, 6, 0, 0]])
        x = _rand(1, 4, 16)
        mha(x, x, x, mask=padding_mask(ids, 0))
        np.testing.assert_allclose(mha.last_weights[..., 2:], 0.0, atol=1e-9)

    def test_causal_masking_is_lower_triangular(self):
        mha = MultiHeadAttention(16, 2, rng=np.random.default_rng(0))
        x = _rand(1, 4, 16)
        mha(x, x, x, mask=causal_mask(4))
        weights = mha.last_weights[0, 0]
        assert np.allclose(np.triu(weights, k=1), 0.0, atol=1e-9)

    def test_cross_attention_different_lengths(self):
        mha = MultiHeadAttention(16, 4, rng=np.random.default_rng(0))
        q = _rand(2, 3, 16, seed=1)
        kv = _rand(2, 7, 16, seed=2)
        out = mha(q, kv, kv)
        assert out.shape == (2, 3, 16)
        assert mha.last_weights.shape == (2, 4, 3, 7)

    def test_gradients_reach_all_projections(self):
        mha = MultiHeadAttention(8, 2, rng=np.random.default_rng(0))
        x = _rand(1, 3, 8)
        mha(x, x, x).sum().backward()
        for name, p in mha.named_parameters():
            assert p.grad is not None, name


class TestTransformerStacks:
    def test_encoder_shape(self):
        enc = TransformerEncoder(2, 16, 4, 32, rng=np.random.default_rng(0))
        out = enc(_rand(2, 5, 16))
        assert out.shape == (2, 5, 16)

    def test_decoder_shape(self):
        dec = TransformerDecoder(2, 16, 4, 32, rng=np.random.default_rng(0))
        out = dec(_rand(2, 4, 16), _rand(2, 6, 16, seed=1))
        assert out.shape == (2, 4, 16)

    def test_decoder_causality(self):
        """Changing a future target token must not change earlier outputs."""
        dec = TransformerDecoder(1, 16, 4, 32, rng=np.random.default_rng(0))
        dec.eval()
        memory = _rand(1, 5, 16, seed=1)
        x = np.random.default_rng(2).normal(size=(1, 4, 16))
        mask = causal_mask(4)
        out_a = dec(Tensor(x), memory, self_mask=mask).data.copy()
        x2 = x.copy()
        # Perturb only the last position, non-uniformly (a uniform shift
        # would be cancelled by LayerNorm).
        x2[0, 3, 0] += 10.0
        out_b = dec(Tensor(x2), memory, self_mask=mask).data
        np.testing.assert_allclose(out_a[0, :3], out_b[0, :3], atol=1e-9)
        assert not np.allclose(out_a[0, 3], out_b[0, 3])

    def test_encoder_pad_invariance(self):
        """Appending PAD keys (masked) must not change non-pad outputs."""
        enc = TransformerEncoder(1, 16, 4, 32, rng=np.random.default_rng(0))
        enc.eval()
        x = np.random.default_rng(3).normal(size=(1, 3, 16))
        ids = np.array([[5, 6, 7]])
        out_short = enc(Tensor(x), mask=padding_mask(ids, 0)).data

        x_padded = np.concatenate([x, np.zeros((1, 2, 16))], axis=1)
        ids_padded = np.array([[5, 6, 7, 0, 0]])
        out_padded = enc(Tensor(x_padded), mask=padding_mask(ids_padded, 0)).data
        np.testing.assert_allclose(out_short[0], out_padded[0, :3], atol=1e-9)

    def test_decoder_exposes_cross_attention(self):
        dec = TransformerDecoder(2, 16, 4, 32, rng=np.random.default_rng(0))
        dec(_rand(1, 3, 16), _rand(1, 5, 16, seed=1))
        maps = dec.cross_attention_weights
        assert len(maps) == 2
        assert maps[0].shape == (1, 4, 3, 5)
