"""Manifest versioning: round-trips, version skew, and the golden pin.

Three guarantees keep old and new processes honest about each other's
stores:

* **Round-trip** — ``Manifest.to_json`` → ``from_json`` is lossless,
  and the rendering is deterministic (no timestamps, no compressed
  sizes, no dict-order dependence), so equal stores produce equal
  bytes.
* **Version skew fails closed, with useful messages** — a manifest
  written by a *future* format version raises
  :class:`ManifestVersionError` naming both versions (even when the
  future schema added or dropped fields); every missing or mistyped
  field of the current version raises :class:`ManifestError` naming
  the field.  A reader never guesses.
* **The golden fixture** — a hand-built, RNG-free corpus saved through
  the real :class:`~repro.search.sharded.ShardedIndex` path must
  reproduce ``tests/data/golden_manifest.json`` byte-for-byte.  Any
  format change — field added, checksum algorithm touched, name scheme
  reshuffled — trips this test and forces a deliberate version bump.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.search.sharded import ShardedIndex
from repro.store import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    Manifest,
    ManifestError,
    ManifestVersionError,
    SegmentRef,
)

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_manifest.json"

#: the RNG-free corpus behind the golden fixture: (doc_id, tokens)
GOLDEN_DOCS = [
    (0, ("wireless", "mouse", "ergonomic")),
    (1, ("mechanical", "keyboard", "rgb")),
    (2, ("usb", "hub", "aluminium")),
    (3, ("wireless", "keyboard", "compact")),
    (4, ("gaming", "mouse", "wired")),
    (5, ("laptop", "stand", "aluminium")),
]


def _ref(**overrides) -> SegmentRef:
    base = dict(
        name="lexical-s000-g000001.postings.seg",
        kind="postings",
        shard=0,
        generation=1,
        checksum=123,
        payload_bytes=456,
        doc_count=7,
        removed_count=0,
        min_doc_id=0,
        max_doc_id=12,
    )
    base.update(overrides)
    return SegmentRef(**base)


def _manifest(**overrides) -> Manifest:
    base = dict(
        tier="lexical",
        num_shards=1,
        generation=1,
        segments=[_ref()],
        meta={"note": "x"},
    )
    base.update(overrides)
    return Manifest(**base)


class TestRoundtrip:
    def test_to_json_from_json_is_lossless(self):
        manifest = _manifest()
        parsed = Manifest.from_json(manifest.to_json())
        assert parsed == manifest

    def test_rendering_is_deterministic(self):
        assert _manifest().to_json() == _manifest().to_json()

    def test_current_version_is_embedded(self):
        raw = json.loads(_manifest().to_json())
        assert raw["version"] == FORMAT_VERSION
        assert raw["format"] == "repro-store"

    def test_diff_names_added_removed_kept(self):
        old = _manifest()
        new = _manifest(
            generation=2,
            segments=[
                _ref(),
                _ref(name="lexical-s000-g000002.postings_delta.seg",
                     kind="postings_delta", generation=2),
            ],
        )
        delta = new.diff(old)
        assert delta["kept"] == ["lexical-s000-g000001.postings.seg"]
        assert delta["added"] == ["lexical-s000-g000002.postings_delta.seg"]
        assert delta["removed"] == []
        assert new.diff(None)["added"] == sorted(r.name for r in new.segments)


def _mutated_json(edit) -> str:
    """Golden-path manifest JSON with ``edit`` applied to the body dict.

    The checksum is recomputed after the edit, so these tests exercise
    the *structural* validators, not just the checksum gate.
    """
    from repro.store.manifest import _manifest_body_checksum

    body = json.loads(_manifest().to_json())
    body.pop("checksum")
    edit(body)
    body["checksum"] = _manifest_body_checksum(body)
    return json.dumps(body)


class TestVersionSkew:
    def test_future_version_raises_version_error_naming_both(self):
        text = _mutated_json(lambda body: body.update(version=FORMAT_VERSION + 5))
        with pytest.raises(ManifestVersionError) as excinfo:
            Manifest.from_json(text)
        message = str(excinfo.value)
        assert str(FORMAT_VERSION + 5) in message
        assert str(FORMAT_VERSION) in message
        assert "newer" in message

    def test_future_version_with_alien_schema_still_versions_cleanly(self):
        """Version check precedes structure checks: a future manifest
        whose schema changed entirely must still say 'version', not
        'missing field'."""

        def gut(body):
            body["version"] = FORMAT_VERSION + 1
            body.pop("segments")
            body["shard_map"] = {"0": "somewhere-else"}

        with pytest.raises(ManifestVersionError):
            Manifest.from_json(_mutated_json(gut))

    def test_version_error_is_a_manifest_error(self):
        text = _mutated_json(lambda body: body.update(version=FORMAT_VERSION + 1))
        with pytest.raises(ManifestError):
            Manifest.from_json(text)

    def test_zero_and_non_integer_versions_are_rejected(self):
        for bad in (0, -1, "1", 1.5, True, None):
            text = _mutated_json(lambda body, bad=bad: body.update(version=bad))
            with pytest.raises(ManifestError):
                Manifest.from_json(text)


class TestStructuralValidation:
    @pytest.mark.parametrize(
        "field", ["tier", "num_shards", "generation", "meta", "segments"]
    )
    def test_each_missing_field_is_named(self, field):
        text = _mutated_json(lambda body: body.pop(field))
        with pytest.raises(ManifestError, match=field):
            Manifest.from_json(text)

    @pytest.mark.parametrize(
        "field",
        ["name", "kind", "shard", "generation", "checksum", "payload_bytes",
         "doc_count", "removed_count", "min_doc_id", "max_doc_id"],
    )
    def test_each_missing_segment_field_is_named(self, field):
        text = _mutated_json(lambda body: body["segments"][0].pop(field))
        with pytest.raises(ManifestError, match=field):
            Manifest.from_json(text)

    def test_checksum_gate_catches_any_field_mutation(self):
        body = json.loads(_manifest().to_json())
        body["generation"] = 7  # mutate WITHOUT recomputing the checksum
        with pytest.raises(ManifestError, match="checksum"):
            Manifest.from_json(json.dumps(body))

    def test_not_json_and_wrong_root_fail_closed(self):
        with pytest.raises(ManifestError, match="JSON"):
            Manifest.from_json("{nope")
        with pytest.raises(ManifestError, match="object"):
            Manifest.from_json("[1, 2]")

    def test_wrong_format_marker(self):
        text = _mutated_json(lambda body: body.update(format="other-store"))
        with pytest.raises(ManifestError, match="format"):
            Manifest.from_json(text)

    def test_alien_kind_and_tier_are_rejected(self):
        with pytest.raises(ManifestError, match="tier"):
            Manifest.from_json(_mutated_json(lambda body: body.update(tier="graph")))
        text = _mutated_json(
            lambda body: body["segments"][0].update(kind="vectors")
        )
        with pytest.raises(ManifestError, match="kind"):
            Manifest.from_json(text)

    def test_duplicate_segment_names_are_rejected(self):
        def dup(body):
            body["segments"].append(dict(body["segments"][0]))

        with pytest.raises(ManifestError, match="duplicate"):
            Manifest.from_json(_mutated_json(dup))

    def test_path_escaping_segment_names_are_rejected(self):
        def escape(body):
            body["segments"][0]["name"] = "../../etc/passwd"

        with pytest.raises(ManifestError, match="plain file name"):
            Manifest.from_json(_mutated_json(escape))

    def test_shardless_chain_is_rejected(self):
        """Two shards declared, but only shard 0 has a base segment."""
        text = _mutated_json(lambda body: body.update(num_shards=2))
        with pytest.raises(ManifestError, match="exactly one full"):
            Manifest.from_json(text)


def _golden_store(root) -> str:
    """Save the RNG-free corpus through the real sharded path."""
    index = ShardedIndex(num_shards=2, parallel=False)
    for doc_id, tokens in GOLDEN_DOCS:
        index.add_document(doc_id, tokens)
    index.save(root)
    return (root / MANIFEST_NAME).read_text()


class TestGoldenManifest:
    def test_fixture_exists_and_parses(self):
        golden = GOLDEN_PATH.read_text()
        manifest = Manifest.from_json(golden)
        assert manifest.version == FORMAT_VERSION
        assert manifest.tier == "lexical"
        assert manifest.num_shards == 2

    def test_saving_the_pinned_corpus_reproduces_the_golden_bytes(self, tmp_path):
        assert _golden_store(tmp_path) == GOLDEN_PATH.read_text(), (
            "MANIFEST.json drifted from tests/data/golden_manifest.json — "
            "if the format change is intentional, bump FORMAT_VERSION and "
            "regenerate the fixture"
        )

    def test_two_independent_saves_are_byte_identical(self, tmp_path):
        first = _golden_store(tmp_path / "a")
        second = _golden_store(tmp_path / "b")
        assert first == second
