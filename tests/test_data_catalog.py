"""Catalog generation invariants."""

import numpy as np
import pytest

from repro.data.catalog import (
    AUDIENCE_ALIASES,
    BRAND_ALIASES,
    CATEGORY_SPECS,
    CatalogConfig,
    CatalogGenerator,
    POLYSEMOUS_TERMS,
    alias_to_canonical,
)


@pytest.fixture(scope="module")
def catalog():
    return CatalogGenerator(CatalogConfig(products_per_category=8, seed=3)).generate()


class TestSpecs:
    def test_every_category_has_brands_and_canonical(self):
        for name, spec in CATEGORY_SPECS.items():
            assert spec.brands, name
            assert spec.canonical, name
            assert spec.price_range[0] < spec.price_range[1], name

    def test_polysemous_terms_span_categories(self):
        for term, categories in POLYSEMOUS_TERMS.items():
            assert len(categories) >= 2
            for category in categories:
                assert category in CATEGORY_SPECS
                assert term in CATEGORY_SPECS[category].brands, (term, category)

    def test_audience_aliases_never_in_titles_vocab(self):
        """Colloquial audience words must not be canonical title tokens —
        that is the vocabulary gap the paper's model bridges."""
        title_tokens = set()
        for spec in CATEGORY_SPECS.values():
            title_tokens.update(spec.canonical + spec.features + spec.marketing + spec.spec_tokens)
            title_tokens.update(spec.brands)
            title_tokens.update(spec.audiences)
        for aliases in AUDIENCE_ALIASES.values():
            for alias in aliases:
                assert alias not in title_tokens, alias

    def test_brand_aliases_differ_from_brands(self):
        for brand, aliases in BRAND_ALIASES.items():
            for alias in aliases:
                assert alias != brand

    def test_alias_to_canonical_flattening(self):
        mapping = alias_to_canonical()
        assert mapping["grandpa"] == "senior"
        assert mapping["ah-di"] == "adidas"
        assert mapping["cellphone"] == "mobile phone"


class TestGeneration:
    def test_deterministic_given_seed(self):
        a = CatalogGenerator(CatalogConfig(products_per_category=5, seed=1)).generate()
        b = CatalogGenerator(CatalogConfig(products_per_category=5, seed=1)).generate()
        assert [p.title for p in a.products] == [p.title for p in b.products]

    def test_different_seed_differs(self):
        a = CatalogGenerator(CatalogConfig(products_per_category=5, seed=1)).generate()
        b = CatalogGenerator(CatalogConfig(products_per_category=5, seed=2)).generate()
        assert [p.title for p in a.products] != [p.title for p in b.products]

    def test_counts(self, catalog):
        assert len(catalog) == 8 * len(CATEGORY_SPECS)
        for name in CATEGORY_SPECS:
            assert len(catalog.by_category[name]) == 8

    def test_product_ids_are_indices(self, catalog):
        for i, product in enumerate(catalog.products):
            assert product.product_id == i
            assert catalog.get(i) is product

    def test_titles_contain_brand_and_canonical(self, catalog):
        for product in catalog.products:
            spec = CATEGORY_SPECS[product.category]
            assert product.title_tokens[0] == product.brand
            for token in spec.canonical:
                assert token in product.title_tokens

    def test_titles_contain_audience_when_set(self, catalog):
        for product in catalog.products:
            if product.audience is not None:
                assert product.audience in product.title_tokens

    def test_titles_are_verbose(self, catalog):
        lengths = [len(p.title_tokens) for p in catalog.products]
        assert np.mean(lengths) >= 6  # titles several times longer than queries

    def test_prices_within_range(self, catalog):
        for product in catalog.products:
            low, high = CATEGORY_SPECS[product.category].price_range
            assert low <= product.price <= high

    def test_categories_listing_sorted(self, catalog):
        assert catalog.categories() == sorted(CATEGORY_SPECS)


class TestIntentMatching:
    def test_category_mismatch_fatal(self, catalog):
        from repro.data.domain import Intent

        phone = catalog.by_category["phone"][0]
        assert Intent(category="shoe").matches(phone) == 0.0

    def test_brand_mismatch_discounts(self, catalog):
        from repro.data.domain import Intent

        product = catalog.by_category["shoe"][0]
        matching = Intent(category="shoe", brand=product.brand).matches(product)
        other_brand = next(
            b for b in CATEGORY_SPECS["shoe"].brands if b != product.brand
        )
        mismatching = Intent(category="shoe", brand=other_brand).matches(product)
        assert matching > mismatching > 0.0

    def test_feature_match_rewards(self, catalog):
        from repro.data.domain import Intent

        product = next(p for p in catalog.products if p.features)
        with_feature = Intent(category=product.category, features=(product.features[0],))
        without = Intent(category=product.category, features=("definitely-absent",))
        assert with_feature.matches(product) > without.matches(product)


class TestIncrementalCatalog:
    def test_add_product(self, catalog):
        generator = CatalogGenerator(CatalogConfig(seed=11))
        rng = np.random.default_rng(11)
        new = generator.sample_products(1, rng, start_id=catalog.next_product_id())[0]
        before = len(catalog)
        catalog.add_product(new)
        assert len(catalog) == before + 1
        assert catalog.get(new.product_id) is new
        assert new in catalog.by_category[new.category]
        catalog.remove_product(new.product_id)  # leave module fixture clean

    def test_duplicate_product_id_rejected(self, catalog):
        existing = catalog.products[0]
        with pytest.raises(ValueError):
            catalog.add_product(existing)

    def test_remove_product(self, catalog):
        generator = CatalogGenerator(CatalogConfig(seed=12))
        rng = np.random.default_rng(12)
        new = generator.sample_products(1, rng, start_id=catalog.next_product_id())[0]
        catalog.add_product(new)
        removed = catalog.remove_product(new.product_id)
        assert removed is new
        assert new.product_id not in catalog
        assert new not in catalog.by_category.get(new.category, [])

    def test_remove_unknown_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.remove_product(10_000_000)

    def test_sample_products_round_robin_and_ids(self):
        generator = CatalogGenerator(CatalogConfig(seed=5))
        rng = np.random.default_rng(5)
        products = generator.sample_products(25, rng, start_id=100)
        assert [p.product_id for p in products] == list(range(100, 125))
        assert len({p.category for p in products}) == len(CATEGORY_SPECS)
