"""Core nn modules: Linear, Embedding, LayerNorm, Dropout, Module plumbing."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Dropout, Embedding, LayerNorm, Linear, Module, ModuleList, Parameter
from repro.nn.positional import PositionalEncoding, sinusoidal_table


class TestModulePlumbing:
    def test_named_parameters_discovers_nested(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(2))

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.b = Parameter(np.zeros(3))

        names = dict(Outer().named_parameters())
        assert set(names) == {"inner.w", "b"}

    def test_modulelist_registers(self):
        items = ModuleList(Linear(2, 2, rng=np.random.default_rng(i)) for i in range(3))
        assert len(items) == 3
        assert len(list(items)) == 3
        # 3 weights + 3 biases
        assert len(ModuleListHolder(items).parameters()) == 6

    def test_train_eval_propagates(self):
        holder = ModuleListHolder(ModuleList([Dropout(0.5)]))
        holder.eval()
        assert all(not m.training for m in holder.modules())
        holder.train()
        assert all(m.training for m in holder.modules())

    def test_state_dict_roundtrip(self):
        layer_a = Linear(3, 2, rng=np.random.default_rng(0))
        layer_b = Linear(3, 2, rng=np.random.default_rng(1))
        assert not np.allclose(layer_a.weight.data, layer_b.weight.data)
        layer_b.load_state_dict(layer_a.state_dict())
        np.testing.assert_allclose(layer_a.weight.data, layer_b.weight.data)

    def test_state_dict_mismatch_raises(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            layer.load_state_dict({"nope": np.zeros(2)})

    def test_state_dict_shape_mismatch_raises(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        state = layer.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_num_parameters(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        assert layer.num_parameters() == 3 * 2 + 2

    def test_zero_grad_clears(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class ModuleListHolder(Module):
    def __init__(self, items):
        super().__init__()
        self.items = items


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 7, rng=np.random.default_rng(0))
        out = layer(Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 3, 7)

    def test_matches_manual_affine(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(5, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        layer(Tensor(np.ones((4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [4.0, 4.0])


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_padding_row_is_zero(self):
        emb = Embedding(10, 4, padding_idx=0, rng=np.random.default_rng(0))
        out = emb(np.array([[0, 1]]))
        np.testing.assert_allclose(out.data[0, 0], np.zeros(4))
        assert not np.allclose(out.data[0, 1], 0.0)

    def test_padding_receives_no_gradient(self):
        emb = Embedding(10, 4, padding_idx=0, rng=np.random.default_rng(0))
        emb(np.array([[0, 1, 1]])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(4))
        # Token 1 used twice: gradient 2 per dim.
        np.testing.assert_allclose(emb.weight.grad[1], np.full(4, 2.0))

    def test_out_of_range_raises(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        with pytest.raises(IndexError):
            emb(np.array([[10]]))
        with pytest.raises(IndexError):
            emb(np.array([[-1]]))


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        ln = LayerNorm(8)
        x = np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(4, 8))
        out = ln(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-3)

    def test_gamma_beta_applied(self):
        ln = LayerNorm(4)
        ln.gamma.data = np.full(4, 2.0)
        ln.beta.data = np.full(4, 1.0)
        x = np.random.default_rng(0).normal(size=(2, 4))
        out = ln(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=-1), np.ones(2), atol=1e-6)

    def test_gradients_flow(self):
        ln = LayerNorm(4)
        ln(Tensor(np.random.default_rng(0).normal(size=(2, 4)), requires_grad=True)).sum().backward()
        assert ln.gamma.grad is not None
        assert ln.beta.grad is not None


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.eval()
        x = np.random.default_rng(1).normal(size=(10, 10))
        np.testing.assert_allclose(drop(Tensor(x)).data, x)

    def test_training_zeroes_and_scales(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100))
        out = drop(Tensor(x)).data
        zero_fraction = float((out == 0).mean())
        assert 0.4 < zero_fraction < 0.6
        surviving = out[out != 0]
        np.testing.assert_allclose(surviving, 2.0)  # 1/(1-0.5)

    def test_p_zero_identity_even_training(self):
        drop = Dropout(0.0)
        x = np.ones((3, 3))
        np.testing.assert_allclose(drop(Tensor(x)).data, x)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestPositionalEncoding:
    def test_table_shape_and_range(self):
        table = sinusoidal_table(16, 8)
        assert table.shape == (16, 8)
        assert np.all(np.abs(table) <= 1.0)

    def test_odd_dimension_supported(self):
        table = sinusoidal_table(4, 7)
        assert table.shape == (4, 7)

    def test_first_position_is_sin0_cos0(self):
        table = sinusoidal_table(4, 6)
        np.testing.assert_allclose(table[0, 0::2], np.zeros(3))  # sin(0)
        np.testing.assert_allclose(table[0, 1::2], np.ones(3))  # cos(0)

    def test_forward_adds_position(self):
        pe = PositionalEncoding(8, max_len=16)
        x = np.zeros((1, 4, 8))
        out = pe(Tensor(x)).data
        np.testing.assert_allclose(out[0], pe.table[:4])

    def test_offset(self):
        pe = PositionalEncoding(8, max_len=16)
        out = pe(Tensor(np.zeros((1, 2, 8))), offset=3).data
        np.testing.assert_allclose(out[0], pe.table[3:5])

    def test_too_long_raises(self):
        pe = PositionalEncoding(8, max_len=4)
        with pytest.raises(ValueError):
            pe(Tensor(np.zeros((1, 5, 8))))
