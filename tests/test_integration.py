"""End-to-end integration: data -> training -> rewriting -> retrieval -> eval.

Exercises the full causal chain the paper deploys, on the tiny fixtures:
click log in, trained cyclic pair, rewrites out, extra recall measured on
the inverted index, judged by the oracle labeler.
"""

import numpy as np
import pytest

from repro.baselines import RuleBasedRewriter
from repro.core import CyclicRewriter, RewriteCache, RewriterConfig, ServingPipeline
from repro.data.domain import QueryStyle
from repro.data.synonyms import build_rule_dictionary
from repro.evaluation import LabelerConfig, SimulatedLabeler
from repro.search import SearchEngine


@pytest.fixture(scope="module")
def rewriter(trained_pair, tiny_market):
    forward, backward, _ = trained_pair
    return CyclicRewriter(
        forward, backward, tiny_market.vocab,
        RewriterConfig(k=3, top_n=5, max_title_len=12, max_query_len=8, seed=0),
    )


class TestEndToEnd:
    def test_cyclic_training_improves_translate_back(self, tiny_market):
        """The headline claim (Figure 7): the cyclic phase improves the
        translate-back log probability over the warmup-only state."""
        from repro.models import ModelConfig, TransformerNMT
        from repro.training import CyclicConfig, CyclicTrainer, translate_back_metrics

        vocab = tiny_market.vocab
        config = ModelConfig(
            vocab_size=len(vocab), d_model=16, num_heads=2, d_ff=32,
            encoder_layers=1, decoder_layers=1, dropout=0.0, seed=0,
        )
        forward = TransformerNMT(config)
        backward = TransformerNMT(config.scaled(seed=1))
        trainer = CyclicTrainer(
            forward, backward, tiny_market.train_pairs, vocab,
            CyclicConfig(batch_size=16, warmup_steps=60, beam_width=2, top_n=5,
                         max_title_len=12, seed=0),
        )
        queries = [
            vocab.encode(list(q), add_eos=True) for q, _, _ in tiny_market.train_pairs[:12]
        ]
        trainer.train(60)  # warmup only
        before = translate_back_metrics(
            forward, backward, queries, vocab, k=2, top_n=5,
            rng=np.random.default_rng(0),
        )
        trainer.train(80)  # cyclic phase
        after = translate_back_metrics(
            forward, backward, queries, vocab, k=2, top_n=5,
            rng=np.random.default_rng(0),
        )
        assert after["log_prob"] > before["log_prob"]

    def test_rewrites_mostly_stay_in_category(self, rewriter, tiny_market):
        """Rewrite quality: the rewritten query should retrieve products of
        the original intent's category for a solid share of queries."""
        labeler = SimulatedLabeler(tiny_market.catalog, LabelerConfig(noise=0.0))
        records = [
            r for r in tiny_market.click_log.queries.values() if r.total_clicks >= 4
        ][:15]
        assert records
        scores = []
        for record in records:
            rewrites = [r.text for r in rewriter.rewrite(record.text)]
            scores.append(labeler.best_relevance(record.intent, rewrites))
        assert np.mean(scores) > 0.3

    def test_rewrites_add_recall_for_colloquial_queries(self, rewriter, tiny_market):
        """The semantic-matching fix: colloquial queries retrieve more
        relevant items WITH rewrites than without."""
        engine = SearchEngine(tiny_market.catalog)
        colloquial = [
            r for r in tiny_market.click_log.queries.values()
            if r.style in (QueryStyle.COLLOQUIAL, QueryStyle.NATURAL) and r.total_clicks >= 3
        ][:12]
        assert colloquial
        gained = 0
        for record in colloquial:
            rewrites = [r.text for r in rewriter.rewrite(record.text)]
            base = engine.search(record.text)
            extended = engine.search(record.text, rewrites)
            relevant_base = sum(
                1 for d in base.doc_ids if record.intent.matches(tiny_market.catalog.get(d)) > 0.3
            )
            relevant_ext = sum(
                1 for d in extended.doc_ids if record.intent.matches(tiny_market.catalog.get(d)) > 0.3
            )
            if relevant_ext > relevant_base:
                gained += 1
        assert gained > 0, "rewrites never added relevant recall"

    def test_cache_then_serve_pipeline(self, rewriter, tiny_market):
        head_queries = [r.text for r in sorted(
            tiny_market.click_log.queries.values(), key=lambda r: -r.total_clicks
        )[:10]]
        cache = RewriteCache()
        cache.populate(rewriter, head_queries, k=3)
        pipeline = ServingPipeline(cache, rewriter)
        served = [pipeline.serve(q) for q in head_queries]
        assert all(s.source in ("cache", "model") for s in served if s.rewrites)
        assert pipeline.stats.cache_served > 0

    def test_rule_baseline_and_model_complement(self, rewriter, tiny_market):
        """Rule-based covers only dictionary queries; the model covers any
        query — the coverage argument for learned rewriting."""
        rules = RuleBasedRewriter(build_rule_dictionary())
        records = list(tiny_market.click_log.queries.values())[:40]
        rule_covered = sum(bool(rules.rewrite(r.text)) for r in records)
        model_covered = sum(bool(rewriter.rewrite(r.text)) for r in records)
        assert model_covered >= rule_covered

    def test_whole_pipeline_is_deterministic(self, trained_pair, tiny_market):
        forward, backward, _ = trained_pair
        query = " ".join(tiny_market.train_pairs[0][0])
        a = CyclicRewriter(
            forward, backward, tiny_market.vocab, RewriterConfig(seed=5, top_n=5)
        ).rewrite(query)
        b = CyclicRewriter(
            forward, backward, tiny_market.vocab, RewriterConfig(seed=5, top_n=5)
        ).rewrite(query)
        assert [r.text for r in a] == [r.text for r in b]
