"""Schema fuzz suite for the gateway wire models (``repro.gateway.schemas``).

The contract under test: **malformed input never surfaces as anything
but a typed :class:`SchemaError`** — never a bare ``TypeError``, never a
500 off the socket.  Three layers pin it:

* golden wire forms — ``tests/data/golden_gateway_schemas.json`` holds
  the exact compact-JSON rendering of every model and the stable
  ``error.code``/``field`` for a canon of malformed payloads, so a
  refactor cannot silently change the wire format or an error code;
* a seeded mutation fuzzer plus a hypothesis sweep over arbitrary JSON
  values, asserting every parse failure is a SchemaError with a
  registered code mapping to a 4xx;
* a live-socket fuzz: the same payloads POSTed at a running gateway all
  come back as parseable 4xx envelopes, zero 500s, zero hangs.
"""

from __future__ import annotations

import asyncio
import json
import random
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RewriteCache, ServingConfig, ServingPipeline
from repro.core.rewriter import RewriteResult
from repro.gateway import schemas
from repro.gateway.schemas import (
    STATUS_BY_CODE,
    BatchItem,
    BatchRequest,
    DrainResponse,
    ErrorEnvelope,
    HealthResponse,
    RewriteRequest,
    RewriteResponse,
    SchemaError,
    SearchRequest,
    SearchResponse,
)
from repro.search.engine import SearchOutcome

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_gateway_schemas.json"

REQUEST_MODELS = {
    "RewriteRequest": RewriteRequest,
    "SearchRequest": SearchRequest,
    "BatchRequest": BatchRequest,
}

#: a well-formed payload per request model, the fuzzer's mutation base
VALID_PAYLOADS = {
    "RewriteRequest": {"query": "red shoes", "tenant": "acme", "lane": 1},
    "SearchRequest": {
        "query": "red shoes", "tenant": "acme", "lane": 0, "mode": "lexical",
    },
    "BatchRequest": {
        "items": [
            {"kind": "rewrite", "query": "red shoes"},
            {"kind": "search", "query": "usb hub", "lane": 1, "mode": "lexical"},
        ],
        "tenant": "acme",
    },
}


def golden_instances() -> dict:
    """Name -> model instance; the constructions the golden fixture pins."""
    return {
        "rewrite_request": RewriteRequest(
            query="red shoes", tenant="acme", lane=1
        ),
        "search_request": SearchRequest(
            query="red shoes", tenant="acme", lane=0, mode="lexical"
        ),
        "batch_request": BatchRequest(
            items=[
                BatchItem(kind="rewrite", query="red shoes"),
                BatchItem(kind="search", query="usb hub", lane=1, mode="hybrid"),
            ],
            tenant="acme",
        ),
        "rewrite_response": RewriteResponse(
            query="red shoes",
            rewrites=["crimson shoes", "red sneakers"],
            source="cache",
            latency_ms=0.125,
        ),
        "search_response": SearchResponse(
            query="red shoes",
            rewrites=["crimson shoes"],
            source="model",
            mode="lexical",
            doc_ids=[3, 1, 7],
            postings_accessed=42,
            latency_ms=1.5,
        ),
        "health_response": HealthResponse(
            status="ok",
            draining=False,
            uptime_seconds=1.25,
            queue_depth=0,
            in_flight=1,
            tenants=["acme", "globex"],
        ),
        "drain_response": DrainResponse(
            draining=True, admitted=10, completed=9, shed=1, drain_seconds=0.004
        ),
        "error_envelope": ErrorEnvelope(
            code="invalid_type",
            message="query must be a string, got number",
            field="query",
        ),
        "error_envelope_rate_limited": ErrorEnvelope(
            code="rate_limited",
            message="tenant 'acme' is over its admission rate",
            field="tenant",
            retry_after_seconds=0.05,
        ),
    }


#: canonical malformed payloads: (model name, payload) -> stable code/field
MALFORMED_CANON = {
    "not_an_object": ("RewriteRequest", [1, 2, 3]),
    "null_payload": ("RewriteRequest", None),
    "missing_query": ("RewriteRequest", {"tenant": "acme"}),
    "unknown_field": ("RewriteRequest", {"query": "q", "shoes": True}),
    "query_wrong_type": ("RewriteRequest", {"query": 7}),
    "query_bool": ("RewriteRequest", {"query": True}),
    "query_null": ("RewriteRequest", {"query": None}),
    "query_empty": ("RewriteRequest", {"query": "   "}),
    "query_too_long": ("RewriteRequest", {"query": "x" * 513}),
    "tenant_too_long": ("RewriteRequest", {"query": "q", "tenant": "t" * 65}),
    "lane_negative": ("RewriteRequest", {"query": "q", "lane": -1}),
    "lane_too_high": ("RewriteRequest", {"query": "q", "lane": 8}),
    "lane_float": ("RewriteRequest", {"query": "q", "lane": 1.5}),
    "lane_bool": ("RewriteRequest", {"query": "q", "lane": True}),
    "mode_unknown": ("SearchRequest", {"query": "q", "mode": "psychic"}),
    "mode_wrong_type": ("SearchRequest", {"query": "q", "mode": 3}),
    "items_missing": ("BatchRequest", {"tenant": "acme"}),
    "items_not_array": ("BatchRequest", {"items": "nope"}),
    "items_empty": ("BatchRequest", {"items": []}),
    "items_too_many": (
        "BatchRequest",
        {"items": [{"kind": "rewrite", "query": "q"}] * 65},
    ),
    "item_not_object": ("BatchRequest", {"items": [17]}),
    "item_bad_kind": ("BatchRequest", {"items": [{"kind": "dance", "query": "q"}]}),
    "item_missing_query": ("BatchRequest", {"items": [{"kind": "rewrite"}]}),
    "item_unknown_field": (
        "BatchRequest",
        {"items": [{"kind": "rewrite", "query": "q", "tenant": "acme"}]},
    ),
}


def compact(payload: dict) -> str:
    """The gateway's byte-stable JSON rendering (same separators)."""
    return json.dumps(payload, separators=(",", ":"))


class TestGoldenWireForms:
    """The fixture pins the exact bytes every model puts on the wire."""

    def test_fixture_exists(self):
        assert GOLDEN_PATH.exists(), "golden fixture missing"

    def test_wire_forms_match_golden(self):
        golden = json.loads(GOLDEN_PATH.read_text())["wire"]
        instances = golden_instances()
        assert set(golden) == set(instances)
        for name, instance in instances.items():
            assert compact(instance.to_wire()) == golden[name], name

    def test_malformed_canon_matches_golden(self):
        """Every canonical fault maps to its pinned code/field, forever."""
        golden = json.loads(GOLDEN_PATH.read_text())["errors"]
        assert set(golden) == set(MALFORMED_CANON)
        for name, (model_name, payload) in MALFORMED_CANON.items():
            with pytest.raises(SchemaError) as excinfo:
                REQUEST_MODELS[model_name].parse(payload)
            assert excinfo.value.code == golden[name]["code"], name
            assert excinfo.value.field == golden[name]["field"], name
            # every code is registered and maps to a 4xx, never a 5xx
            assert 400 <= STATUS_BY_CODE[excinfo.value.code] < 500, name

    def test_error_envelope_round_trips(self):
        envelope = golden_instances()["error_envelope_rate_limited"]
        assert ErrorEnvelope.parse(envelope.to_wire()) == envelope
        assert envelope.status == 429

    def test_error_envelope_omits_null_optionals(self):
        wire = ErrorEnvelope(code="not_found", message="no route").to_wire()
        assert wire == {"error": {"code": "not_found", "message": "no route"}}

    def test_error_envelope_rejects_other_shapes(self):
        for bad in ({}, {"oops": {}}, {"error": {}, "x": 1}, [1], "err"):
            with pytest.raises(SchemaError):
                ErrorEnvelope.parse(bad)


class TestFieldValidation:
    """The scalar/constraint semantics the fuzzers rely on."""

    def test_defaults_fill_optional_fields(self):
        model = RewriteRequest.parse({"query": "q"})
        assert model == RewriteRequest(query="q", tenant="default", lane=0)

    def test_int_accepted_where_float_expected_not_reverse(self):
        envelope = ErrorEnvelope.parse(
            {"error": {"code": "rate_limited", "message": "m",
                       "retry_after_seconds": 2}}
        )
        assert envelope.retry_after_seconds == 2.0
        with pytest.raises(SchemaError) as excinfo:
            RewriteRequest.parse({"query": "q", "lane": 0.0})
        assert excinfo.value.code == schemas.INVALID_TYPE

    def test_optional_mode_accepts_null(self):
        assert SearchRequest.parse({"query": "q", "mode": None}).mode is None

    def test_nested_item_error_carries_item_field(self):
        with pytest.raises(SchemaError) as excinfo:
            BatchRequest.parse({"items": [{"kind": "rewrite", "query": 9}]})
        assert excinfo.value.code == schemas.INVALID_TYPE
        assert excinfo.value.field == "query"

    def test_non_string_keys_are_unknown_fields(self):
        with pytest.raises(SchemaError) as excinfo:
            RewriteRequest.parse({"query": "q", 3: "x"})
        assert excinfo.value.code == schemas.UNKNOWN_FIELD

    def test_status_by_code_is_total_over_module_codes(self):
        for code in (
            schemas.INVALID_JSON, schemas.INVALID_TYPE, schemas.MISSING_FIELD,
            schemas.UNKNOWN_FIELD, schemas.INVALID_VALUE, schemas.BAD_REQUEST,
            schemas.NOT_FOUND, schemas.METHOD_NOT_ALLOWED,
            schemas.LENGTH_REQUIRED, schemas.BODY_TOO_LARGE,
            schemas.UNSUPPORTED_MEDIA_TYPE, schemas.RATE_LIMITED,
            schemas.QUEUE_FULL, schemas.DRAINING, schemas.INTERNAL,
        ):
            assert code in STATUS_BY_CODE


# -- seeded mutation fuzzer ---------------------------------------------------
_JUNK_VALUES = (
    None, True, False, 0, -1, 1.5, float("inf"), "", "   ", "x" * 600,
    [], [None], {}, {"nested": {}}, "\x00", 2**63,
)


def _mutations(rng: random.Random, base: dict) -> list:
    """Seeded malformed variants of one valid payload."""
    variants: list = [
        rng.choice(_JUNK_VALUES),  # not an object at all
        {rng.choice("abcxyz") * rng.randint(1, 8): rng.choice(_JUNK_VALUES)},
    ]
    keys = list(base)
    for key in keys:
        dropped = dict(base)
        del dropped[key]
        variants.append(dropped)  # missing (or defaulted) field
        for junk in rng.sample(_JUNK_VALUES, 4):
            mutated = dict(base)
            mutated[key] = junk
            variants.append(mutated)
    extra = dict(base)
    extra["".join(rng.choice("qwerty") for _ in range(6))] = 1
    variants.append(extra)
    return variants


@pytest.mark.parametrize("model_name", sorted(REQUEST_MODELS))
def test_seeded_fuzz_every_fault_is_typed(model_name):
    """200+ seeded mutations: SchemaError (4xx) or a valid instance, only."""
    model = REQUEST_MODELS[model_name]
    rng = random.Random(1234)
    payloads = []
    for _ in range(16):
        payloads.extend(_mutations(rng, VALID_PAYLOADS[model_name]))
    assert len(payloads) >= 200
    for payload in payloads:
        try:
            parsed = model.parse(payload)
        except SchemaError as error:
            assert error.code in STATUS_BY_CODE
            assert 400 <= STATUS_BY_CODE[error.code] < 500
        else:  # a mutation that stayed valid must round-trip cleanly
            json.dumps(parsed.to_wire())


_json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


@settings(max_examples=150, deadline=None)
@given(payload=_json_values)
def test_hypothesis_arbitrary_json_never_escapes_schema_error(payload):
    for model in REQUEST_MODELS.values():
        try:
            model.parse(payload)
        except SchemaError:
            pass  # the only exception type the contract allows


# -- live-socket fuzz ---------------------------------------------------------
class _EchoRewriter:
    """Deterministic single-rewrite model tier (fast; no real model)."""

    def rewrite(self, query, k=3):
        """Every query rewrites to itself plus a marker token."""
        return [RewriteResult(tokens=(query, "fuzzed"), log_prob=-1.0)][:k]


class _TinyEngine:
    """Two fixed hits per query; supports only the default lexical mode."""

    def search(self, query, rewrites=None):
        """Fixed outcome, so the socket fuzz never does real retrieval."""
        return SearchOutcome(
            query=query,
            rewrites=list(rewrites or []),
            doc_ids=[1, 2],
            postings_accessed=3,
            tree_nodes=1,
            num_trees=1,
        )


def _fuzz_bodies() -> list[bytes]:
    """Raw request bodies: mutation-fuzz payloads + non-JSON garbage."""
    rng = random.Random(99)
    bodies = [
        b"", b"{", b"not json", b'"just a string"', b"[1,2,3]",
        b"\xff\xfe\x00garbage", b"null", b"true",
        compact({"query": ""}).encode(),
    ]
    for name, base in VALID_PAYLOADS.items():
        for payload in _mutations(rng, base)[:20]:
            try:
                bodies.append(json.dumps(payload).encode())
            except (TypeError, ValueError):
                continue  # inf and friends: not representable, skip
    return bodies


def test_socket_fuzz_maps_every_fault_to_a_typed_4xx():
    """POST every fuzz body at a live gateway: 4xx envelopes, zero 500s."""
    from repro.gateway import Gateway, GatewayConfig, MiniClient
    from repro.gateway.ratelimit import RateLimitConfig
    from repro.online.clock import WallClock

    async def fuzz() -> tuple[int, dict]:
        clock = WallClock()
        pipeline = ServingPipeline(
            RewriteCache(ttl_seconds=1e9, clock=clock.now),
            _EchoRewriter(),
            ServingConfig(),
            search_engine=_TinyEngine(),
            tenant="acme",
        )
        config = GatewayConfig(
            rate_limit=RateLimitConfig(rate_per_second=1e6, burst=1_000_000)
        )
        five_hundreds = 0
        codes: dict[str, int] = {}
        async with Gateway({"acme": pipeline}, config, clock=clock) as gateway:
            client = MiniClient(gateway.config.host, gateway.port)
            try:
                for path in ("/v1/rewrite", "/v1/search", "/v1/batch"):
                    for body in _fuzz_bodies():
                        status, _, payload = await asyncio.wait_for(
                            client.raw("POST", path, body),
                            timeout=10.0,  # the no-hang half of the contract
                        )
                        if status >= 500:
                            five_hundreds += 1
                        if status != 200:
                            envelope = ErrorEnvelope.parse(payload)
                            assert envelope.status == status
                            codes[envelope.code] = codes.get(envelope.code, 0) + 1
            finally:
                await client.close()
        return five_hundreds, codes

    five_hundreds, codes = asyncio.run(fuzz())
    assert five_hundreds == 0
    # the sweep exercised a broad surface, not one failure shape
    assert {"invalid_json", "invalid_type", "unknown_field"} <= set(codes)
