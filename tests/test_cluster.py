"""Cluster tier: pools, shard backends, worker lifecycle, replica failover.

Unit coverage for :mod:`repro.cluster` and the store primitives it leans
on: the clamped lazy executor shared by every thread fan-out, exception
propagation with shard context from both backends, process-worker
timeouts and kill/respawn (the digest fingerprint must survive a
respawn from segments), replica routing with organic failover and
broadcast writes, and the snapshot-ship path
(:meth:`~repro.store.SegmentStore.ship_snapshot` /
:meth:`~repro.store.SegmentStore.load_shard`).
"""

from __future__ import annotations

import os

import pytest

from repro.cluster import (
    InprocBackend,
    LazyExecutor,
    NoHealthyReplicaError,
    ProcessBackend,
    ReplicaRouter,
    ShardTimeoutError,
    ShardUnavailableError,
    ShardWorkerError,
    clamp_workers,
)
from repro.search.inverted_index import InvertedIndex
from repro.search.sharded import ShardedIndex
from repro.store import ManifestError, SegmentCorruptError, SegmentStore

NUM_DOCS = 20


def lexical_indexes(num_shards: int = 2, docs: int = NUM_DOCS) -> list[InvertedIndex]:
    """Correctly routed shard indexes over a tiny synthetic corpus."""
    indexes = [InvertedIndex() for _ in range(num_shards)]
    for doc_id in range(docs):
        indexes[doc_id % num_shards].add_document(
            doc_id, (f"tok{doc_id % 7}", "common")
        )
    return indexes


def notes_of(error: BaseException) -> str:
    return "\n".join(getattr(error, "__notes__", []))


# -- pool ---------------------------------------------------------------------
class TestLazyExecutor:
    def test_clamp_workers_bounds(self):
        cores = os.cpu_count() or 1
        assert clamp_workers(0) == 1
        assert clamp_workers(-3) == 1
        assert clamp_workers(1) == 1
        assert clamp_workers(10**6) == cores
        assert 1 <= clamp_workers(8) <= max(8, cores)

    def test_lazy_until_first_use_and_ordered_map(self):
        pool = LazyExecutor(4)
        assert not pool.running
        assert list(pool.map(lambda x: x * x, range(6))) == [0, 1, 4, 9, 16, 25]
        assert pool.running
        pool.close()
        assert not pool.running

    def test_close_is_idempotent_and_recreatable(self):
        pool = LazyExecutor(2)
        pool.close()
        pool.close()
        # A closed pool lazily recreates on next use — backends stay
        # usable after an early close.
        assert list(pool.map(lambda x: x + 1, [1, 2])) == [2, 3]
        pool.close()

    def test_context_manager(self):
        with LazyExecutor(2) as pool:
            assert list(pool.map(str, [1])) == ["1"]
        assert not pool.running


# -- inproc backend -----------------------------------------------------------
class TestInprocBackend:
    def test_application_error_carries_shard_context(self):
        backend = InprocBackend("lexical", indexes=lexical_indexes())
        try:
            with pytest.raises(KeyError) as excinfo:
                backend.call(0, "doc", 998)
            assert "shard 0" in notes_of(excinfo.value)
        finally:
            backend.close()

    def test_kill_poisons_every_op(self):
        backend = InprocBackend("lexical", indexes=lexical_indexes())
        try:
            assert backend.call(0, "ping") is True
            backend.kill()
            with pytest.raises(ShardUnavailableError):
                backend.call(0, "ping")
            with pytest.raises(ShardUnavailableError):
                backend.fanout("shard_size")
            with pytest.raises(ShardUnavailableError):
                with backend.quiesce():
                    pass
        finally:
            backend.close()

    def test_fanout_results_in_shard_order(self):
        backend = InprocBackend("lexical", indexes=lexical_indexes(4))
        try:
            assert backend.fanout("shard_size") == [5, 5, 5, 5]
        finally:
            backend.close()


# -- process backend ----------------------------------------------------------
class TestProcessBackend:
    def test_worker_exception_reconstructed_with_context(self):
        backend = ProcessBackend("lexical", indexes=lexical_indexes())
        try:
            with pytest.raises(KeyError) as excinfo:
                backend.call(0, "doc", 998)
            notes = notes_of(excinfo.value)
            assert "shard 0" in notes
            assert "remote traceback" in notes
            # The worker survives an application error.
            assert backend.call(0, "ping") is True
        finally:
            backend.close()

    def test_timeout_kills_the_worker(self):
        backend = ProcessBackend("lexical", indexes=lexical_indexes(), timeout=0.25)
        try:
            with pytest.raises(ShardTimeoutError):
                backend.call(0, "stall", 5.0)
            # After a timeout the pipe is desynchronized: the worker is
            # gone and only a respawn can bring the shard back.
            with pytest.raises(ShardUnavailableError):
                backend.call(0, "ping")
            assert backend.call(1, "ping") is True
        finally:
            backend.close()

    def test_kill_and_respawn_restores_fingerprint(self, tmp_path):
        index = ShardedIndex(num_shards=2, parallel=False)
        for doc_id in range(NUM_DOCS):
            index.add_document(doc_id, (f"tok{doc_id % 7}", "common"))
        index.save(tmp_path / "store")
        index.close()

        backend = ProcessBackend("lexical", store_root=tmp_path / "store")
        try:
            before = backend.fanout("digest")
            backend.kill_worker(0)
            with pytest.raises(ShardUnavailableError):
                backend.call(0, "ping")
            backend.respawn_worker(0)
            # The respawned worker cold-started from its segment chain
            # back to the byte-identical persisted state.
            assert backend.fanout("digest") == before
            assert backend.fanout("shard_size") == [NUM_DOCS // 2, NUM_DOCS // 2]
        finally:
            backend.close()

    def test_respawn_requires_a_store(self):
        backend = ProcessBackend("lexical", indexes=lexical_indexes())
        try:
            backend.kill_worker(0)
            with pytest.raises(ShardWorkerError):
                backend.respawn_worker(0)
        finally:
            backend.close()

    def test_boot_from_missing_store_raises_manifest_error(self, tmp_path):
        with pytest.raises(ManifestError):
            ProcessBackend("lexical", store_root=tmp_path / "nowhere")


# -- replica router -----------------------------------------------------------
def two_replicas() -> ReplicaRouter:
    return ReplicaRouter(
        [InprocBackend("lexical", indexes=lexical_indexes()) for _ in range(2)]
    )


class TestReplicaRouter:
    def test_reads_fail_over_organically(self):
        router = two_replicas()
        try:
            router.kill_replica(0)
            # The router was not told: the next reads that land on the
            # dead replica must discover it and reroute.
            for _ in range(4):
                assert sum(router.fanout("shard_size")) == NUM_DOCS
            stats = router.stats()
            assert stats["failovers"] == 1
            assert stats["healthy_replicas"] == 1
            assert stats["rerouted_requests"] >= 1
        finally:
            router.close()

    def test_writes_broadcast_to_every_healthy_replica(self):
        router = two_replicas()
        try:
            router.call(0, "add", NUM_DOCS, ("fresh", "common"))
            for replica in router.replicas:
                assert replica.call(0, "contains", NUM_DOCS) is True
        finally:
            router.close()

    def test_writes_skip_dead_replicas_counted(self):
        router = two_replicas()
        try:
            router.kill_replica(0)
            router.call(0, "add", NUM_DOCS, ("fresh", "common"))
            stats = router.stats()
            assert stats["writes_skipped"] == 1
            assert stats["failovers"] == 1
            assert router.replicas[1].call(0, "contains", NUM_DOCS) is True
        finally:
            router.close()

    def test_respawn_validates_and_heals(self):
        router = two_replicas()
        try:
            router.kill_replica(0)
            router.fanout("shard_size")  # organic discovery
            with pytest.raises(ValueError):
                router.respawn_replica(
                    0, InprocBackend("lexical", indexes=lexical_indexes(4))
                )
            router.respawn_replica(
                0, InprocBackend("lexical", indexes=lexical_indexes())
            )
            stats = router.stats()
            assert stats["healthy_replicas"] == 2
            assert stats["respawns"] == 1
        finally:
            router.close()

    def test_all_dead_raises_no_healthy_replica(self):
        router = two_replicas()
        try:
            router.kill()
            with pytest.raises(NoHealthyReplicaError):
                router.fanout("shard_size")
            with pytest.raises(NoHealthyReplicaError):
                router.call(0, "add", NUM_DOCS, ("fresh",))
        finally:
            router.close()

    def test_quiesce_fails_over_but_propagates_caller_errors(self):
        router = two_replicas()
        try:
            router.kill_replica(0)
            with router.quiesce() as indexes:
                assert sum(len(index) for index in indexes) == NUM_DOCS
            assert router.stats()["failovers"] >= 0  # entry may or may not hit 0
            # An error raised INSIDE the caller's body must propagate
            # untouched — never be swallowed by entry failover.
            with pytest.raises(RuntimeError, match="caller body"):
                with router.quiesce():
                    raise RuntimeError("caller body")
        finally:
            router.close()

    def test_application_errors_are_not_rerouted(self):
        router = two_replicas()
        try:
            with pytest.raises(KeyError):
                router.call(0, "doc", 998)
            # Every replica would fail identically; nothing was marked.
            assert router.stats()["healthy_replicas"] == 2
        finally:
            router.close()


# -- store primitives ---------------------------------------------------------
class TestStoreClusterPrimitives:
    def save_store(self, tmp_path, num_shards: int = 2):
        store = SegmentStore(tmp_path / "store", "lexical")
        store.save(lexical_indexes(num_shards))
        return store

    def test_load_shard_matches_full_load(self, tmp_path):
        store = self.save_store(tmp_path)
        full = store.load()
        for shard_id, expected in enumerate(full):
            alone = store.load_shard(shard_id)
            assert alone.document_ids() == expected.document_ids()

    def test_load_shard_range_checked(self, tmp_path):
        store = self.save_store(tmp_path)
        with pytest.raises(ManifestError):
            store.load_shard(2)
        with pytest.raises(ManifestError):
            store.load_shard(-1)

    def test_load_shard_validates_routing(self, tmp_path):
        # Swap the two shards' contents: every doc lands in the wrong
        # partition, which per-shard cold start must refuse.
        indexes = lexical_indexes()
        SegmentStore(tmp_path / "store", "lexical").save(indexes[::-1])
        with pytest.raises(SegmentCorruptError, match="routed to another shard"):
            SegmentStore(tmp_path / "store", "lexical").load_shard(0)

    def test_ship_snapshot_round_trip(self, tmp_path):
        store = self.save_store(tmp_path)
        manifest = store.manifest()
        shipped = store.ship_snapshot(tmp_path / "dest")
        assert shipped.generation == manifest.generation
        assert shipped.num_shards == manifest.num_shards
        copied = SegmentStore(tmp_path / "dest", "lexical").load()
        original = store.load()
        for mine, theirs in zip(copied, original):
            assert mine.document_ids() == theirs.document_ids()

    def test_ship_snapshot_refuses_existing_store(self, tmp_path):
        store = self.save_store(tmp_path)
        store.ship_snapshot(tmp_path / "dest")
        with pytest.raises(ManifestError):
            store.ship_snapshot(tmp_path / "dest")
