"""Round-trip equivalence: saved-and-loaded indexes ARE the live ones.

The persistence contract of :mod:`repro.store` is exact-state restore:
an engine loaded from segments returns **identical** ``(doc_id, score)``
rankings to the in-RAM engine it was saved from — same oracle style as
``tests/test_search_equivalence.py``, with the disk round-trip replacing
the shard fan-out as the transparency under test.  The suite covers
every wired ``save``/``load`` surface (single ``InvertedIndex`` /
``VectorIndex`` files, sharded stores at 1/2/4/8 shards, the hybrid
engine's twin stores) across the full segment lifecycle: fresh full
save, churn followed by an incremental delta save, and compaction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.catalog import CATEGORY_SPECS, CatalogConfig, CatalogGenerator
from repro.embedding import DualEncoder, DualEncoderConfig
from repro.search import (
    HybridConfig,
    HybridSearchEngine,
    SearchConfig,
    ShardedSearchEngine,
    ShardedVectorIndex,
    VectorIndex,
)
from repro.search.inverted_index import InvertedIndex
from repro.store import SegmentStore

TOP_K = 15
NUM_QUERIES = 25
DIM = 12


def sample_query(rng: np.random.Generator, products) -> str:
    """A 1-3 token query from a live title (sometimes plus an OOV token)."""
    title = list(products[int(rng.integers(0, len(products)))].title_tokens)
    count = int(rng.integers(1, min(3, len(title)) + 1))
    picks = [title[int(i)] for i in rng.choice(len(title), size=count, replace=False)]
    if rng.random() < 0.2:
        picks.append("xyzzy")
    return " ".join(picks)


def assert_identical_results(live, loaded, rng, *, queries=NUM_QUERIES):
    """Seeded queries must rank identically — doc ids AND scores."""
    for _ in range(queries):
        query = sample_query(rng, live.catalog.products)
        rewrites = [sample_query(rng, live.catalog.products)] if rng.random() < 0.5 else []
        expected = live.search(query, rewrites)
        got = loaded.search(query, rewrites)
        assert got.doc_ids == expected.doc_ids, query
        assert got.scores == expected.scores, query


def churn(engine, generator, rng, *, adds: int, removes: int):
    """List ``adds`` fresh products, then delist ``removes`` live ones."""
    fresh = generator.sample_products(
        adds, rng, start_id=engine.catalog.next_product_id()
    )
    for product in fresh:
        engine.add_product(product)
    live = sorted(p.product_id for p in engine.catalog.products)
    victims = [int(live[int(i)]) for i in rng.choice(len(live), size=removes, replace=False)]
    for victim in victims:
        engine.remove_product(victim)
    return fresh


class TestShardedLexicalRoundtrip:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("ranker", ["bm25", "overlap"])
    def test_fresh_save_restores_identical_rankings(self, tmp_path, num_shards, ranker):
        generator = CatalogGenerator(CatalogConfig(products_per_category=8, seed=3))
        config = SearchConfig(max_candidates=TOP_K, ranker=ranker)
        live = ShardedSearchEngine(
            generator.generate(), config, num_shards=num_shards, parallel=False
        )
        live.save(tmp_path)
        loaded = ShardedSearchEngine.load(live.catalog, tmp_path, config, parallel=False)
        assert loaded.index.document_ids() == live.index.document_ids()
        assert_identical_results(
            live, loaded, np.random.default_rng(10 + num_shards)
        )

    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    def test_churn_delta_save_and_compaction_stay_identical(self, tmp_path, num_shards):
        generator = CatalogGenerator(CatalogConfig(products_per_category=8, seed=4))
        config = SearchConfig(max_candidates=TOP_K, ranker="bm25")
        live = ShardedSearchEngine(
            generator.generate(), config, num_shards=num_shards, parallel=False
        )
        rng = np.random.default_rng(20 + num_shards)
        live.save(tmp_path)

        # Light churn -> the second save extends the chains with deltas.
        churn(live, generator, rng, adds=6, removes=4)
        manifest = live.save(tmp_path)
        assert manifest.generation == 2
        assert any(not ref.is_full for ref in manifest.segments)
        loaded = ShardedSearchEngine.load(live.catalog, tmp_path, config, parallel=False)
        assert loaded.index.document_ids() == live.index.document_ids()
        assert_identical_results(live, loaded, rng)

        # Compaction folds the chains back into one full per shard...
        store = SegmentStore(tmp_path, "lexical")
        compacted = store.compact()
        assert all(ref.is_full for ref in compacted.segments)
        assert len(list(tmp_path.glob("*.seg"))) == num_shards
        # ...without changing a single ranking.
        loaded = ShardedSearchEngine.load(live.catalog, tmp_path, config, parallel=False)
        assert_identical_results(live, loaded, rng)

    def test_heavy_churn_triggers_full_rewrite_not_delta(self, tmp_path):
        generator = CatalogGenerator(CatalogConfig(products_per_category=6, seed=5))
        live = ShardedSearchEngine(
            generator.generate(), SearchConfig(ranker="bm25"), num_shards=2,
            parallel=False,
        )
        rng = np.random.default_rng(5)
        live.save(tmp_path)
        docs = len(live.index)
        churn(live, generator, rng, adds=docs, removes=docs // 2)
        manifest = live.save(tmp_path)
        # Churn touched more than half of every shard: delta replay would
        # cost more than a rewrite, so the store must write fresh fulls.
        assert all(ref.is_full for ref in manifest.segments)
        loaded = ShardedSearchEngine.load(
            live.catalog, tmp_path, SearchConfig(ranker="bm25"), parallel=False
        )
        assert_identical_results(live, loaded, rng)

    def test_noop_save_keeps_the_manifest_generation(self, tmp_path):
        generator = CatalogGenerator(CatalogConfig(products_per_category=4, seed=6))
        live = ShardedSearchEngine(
            generator.generate(), SearchConfig(ranker="bm25"), num_shards=2,
            parallel=False,
        )
        first = live.save(tmp_path)
        again = live.save(tmp_path)
        assert again.generation == first.generation
        assert [ref.name for ref in again.segments] == [
            ref.name for ref in first.segments
        ]


class TestInvertedIndexSingleFile:
    def test_roundtrip_restores_every_private_structure(self, tmp_path):
        generator = CatalogGenerator(CatalogConfig(products_per_category=5, seed=7))
        index = InvertedIndex()
        for product in generator.generate().products:
            index.add_document(product.product_id, product.title_tokens)
        path = tmp_path / "one.seg"
        index.save(path)
        loaded = InvertedIndex.load(path)
        assert loaded._postings == index._postings
        assert loaded._tfs == index._tfs
        assert loaded._docs == index._docs
        assert loaded._doc_lengths == index._doc_lengths
        assert loaded.total_doc_length == index.total_doc_length
        assert loaded.avg_doc_length == index.avg_doc_length

    def test_empty_index_roundtrips(self, tmp_path):
        path = tmp_path / "empty.seg"
        InvertedIndex().save(path)
        loaded = InvertedIndex.load(path)
        assert len(loaded) == 0
        assert loaded.num_terms == 0


class TestVectorRoundtrip:
    @staticmethod
    def _vectors(n: int, rng) -> np.ndarray:
        mat = rng.standard_normal((n, DIM))
        return mat / np.linalg.norm(mat, axis=1, keepdims=True)

    def test_single_file_roundtrip_matches_probe_and_brute_force(self, tmp_path):
        rng = np.random.default_rng(11)
        vectors = self._vectors(120, rng)
        index = VectorIndex(DIM, num_clusters=6, seed=1)
        index.fit(list(range(120)), vectors)
        path = tmp_path / "cells.seg"
        index.save(path)
        loaded = VectorIndex.load(path)
        for i in range(25):
            assert loaded.search(vectors[i], TOP_K) == index.search(vectors[i], TOP_K)
            assert loaded.brute_force(vectors[i], TOP_K) == index.brute_force(
                vectors[i], TOP_K
            )

    def test_untrained_index_roundtrips(self, tmp_path):
        rng = np.random.default_rng(12)
        vectors = self._vectors(10, rng)
        index = VectorIndex(DIM, num_clusters=4, seed=2)
        for i in range(10):
            index.add_document(i, vectors[i])
        path = tmp_path / "flat.seg"
        index.save(path)
        loaded = VectorIndex.load(path)
        assert len(loaded) == len(index)
        for i in range(10):
            assert loaded.search(vectors[i], 5) == index.search(vectors[i], 5)

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_sharded_roundtrip_with_churn_and_compaction(self, tmp_path, num_shards):
        rng = np.random.default_rng(13 + num_shards)
        vectors = self._vectors(160, rng)
        live = ShardedVectorIndex(
            DIM, num_shards=num_shards, num_clusters=5, parallel=False, seed=3
        )
        live.fit(list(range(160)), vectors)
        live.save(tmp_path)
        loaded = ShardedVectorIndex.load(tmp_path, parallel=False)
        for i in range(25):
            assert loaded.search(vectors[i], TOP_K) == live.search(vectors[i], TOP_K)

        # Churn within frozen centroids -> delta save, still identical.
        for doc_id in range(0, 20):
            live.remove_document(doc_id)
        extra = self._vectors(12, rng)
        for offset in range(12):
            live.add_document(200 + offset, extra[offset])
        manifest = live.save(tmp_path)
        assert any(not ref.is_full for ref in manifest.segments)
        loaded = ShardedVectorIndex.load(tmp_path, parallel=False)
        for i in range(20, 45):
            assert loaded.search(vectors[i], TOP_K) == live.search(vectors[i], TOP_K)

        compacted = SegmentStore(tmp_path, "vector").compact()
        assert all(ref.is_full for ref in compacted.segments)
        loaded = ShardedVectorIndex.load(tmp_path, parallel=False)
        for i in range(20, 45):
            assert loaded.search(vectors[i], TOP_K) == live.search(vectors[i], TOP_K)


class TestHybridRoundtrip:
    def test_all_retrieval_modes_restore_identically(self, tmp_path):
        generator = CatalogGenerator(CatalogConfig(products_per_category=6, seed=8))
        catalog = generator.generate()
        from repro.data.clicklog import ClickLogConfig
        from repro.data.marketplace import MarketplaceConfig, generate_marketplace

        market = generate_marketplace(
            MarketplaceConfig(
                catalog=CatalogConfig(products_per_category=6, seed=8),
                clicks=ClickLogConfig(num_sessions=150, intent_pool_size=30),
                seed=8,
            )
        )
        encoder = DualEncoder(market.vocab, DualEncoderConfig(seed=0))
        config = SearchConfig(max_candidates=TOP_K, ranker="bm25")
        hybrid_config = HybridConfig(nprobe=4)
        live = HybridSearchEngine(
            catalog, encoder, config, hybrid_config,
            num_shards=2, num_clusters=6, parallel=False, seed=0,
        )
        live.save(tmp_path)
        loaded = HybridSearchEngine.load(
            tmp_path, catalog, encoder, config, hybrid_config, parallel=False
        )
        rng = np.random.default_rng(30)
        for _ in range(NUM_QUERIES):
            query = sample_query(rng, catalog.products)
            for mode in ("lexical", "semantic", "hybrid"):
                expected = live.search(query, mode=mode)
                got = loaded.search(query, mode=mode)
                assert got.doc_ids == expected.doc_ids, (query, mode)
                assert got.scores == expected.scores, (query, mode)

        # Churn through the live engine, delta-save, reload: still identical
        # in every mode (the delisted products must not resurface anywhere).
        fresh = churn(live, generator, rng, adds=10, removes=6)
        live.save(tmp_path)
        loaded = HybridSearchEngine.load(
            tmp_path, catalog, encoder, config, hybrid_config, parallel=False
        )
        probes = [" ".join(p.title_tokens[:2]) for p in fresh[:5]]
        for query in probes:
            for mode in ("lexical", "semantic", "hybrid"):
                expected = live.search(query, mode=mode)
                got = loaded.search(query, mode=mode)
                assert got.doc_ids == expected.doc_ids, (query, mode)
                assert got.scores == expected.scores, (query, mode)
