"""The online freshness subsystem: clock, windowed gauges, controller, replay."""

import hashlib
import math
import time

import pytest
from hypothesis import given
from hypothesis import settings as hyp_settings
from hypothesis import strategies as hyp_st

from repro.baselines import RuleBasedRewriter
from repro.core import RewriteCache, ServingConfig, ServingPipeline
from repro.core.rewriter import RewriteResult
from repro.data.catalog import CatalogConfig, CatalogGenerator, alias_to_canonical
from repro.data.clicklog import ClickLogConfig, ClickLogSimulator
from repro.online import (
    FreshnessController,
    ReplayConfig,
    SchedulerConfig,
    TrafficReplay,
    VirtualClock,
    WallClock,
    WindowedStats,
)
from repro.search import SearchConfig, ShardedSearchEngine


class CountingRewriter:
    """Deterministic rewriter that counts invocations."""

    def __init__(self, mapping=None):
        self.mapping = mapping or {}
        self.calls = 0

    def rewrite(self, query, k=3):
        self.calls += 1
        return [
            RewriteResult(tokens=tuple(text.split()), log_prob=-1.0)
            for text in self.mapping.get(query, [])[:k]
        ]


class TestVirtualClock:
    def test_advances_monotonically(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        assert clock.advance(2.5) == 2.5
        assert clock.advance(0.0) == 2.5
        assert clock.now() == 2.5

    def test_never_goes_backwards(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_custom_start(self):
        assert VirtualClock(start=10.0).now() == 10.0


class TestWindowedStats:
    def test_rates_and_counts(self):
        stats = WindowedStats(window=100)
        stats.record(1.0, hit=True)
        stats.record(2.0, hit=True, stale=True)
        stats.record(3.0, empty=True)
        assert len(stats) == 3
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert stats.stale_rate == pytest.approx(1 / 3)
        assert stats.empty_rate == pytest.approx(1 / 3)
        assert stats.total_requests == 3

    def test_window_slides(self):
        stats = WindowedStats(window=2)
        stats.record(1.0, hit=True)
        stats.record(2.0, hit=True)
        stats.record(100.0)  # evicts the first hit
        assert len(stats) == 2
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.mean_latency_ms() == pytest.approx(51.0)
        # Lifetime counters keep the full history.
        assert stats.total_requests == 3
        assert stats.total_hits == 2
        assert stats.lifetime_hit_rate == pytest.approx(2 / 3)

    def test_percentiles_nearest_rank_over_window(self):
        stats = WindowedStats(window=10)
        for latency in range(1, 101):  # only 91..100 stay in the window
            stats.record(float(latency))
        assert stats.p50_latency_ms() == 95.0
        assert stats.p99_latency_ms() == 100.0
        assert stats.percentile_latency_ms(0.1) == 91.0

    def test_percentiles_match_full_sort_semantics(self):
        latencies = [7.0, 1.0, 3.0, 3.0, 9.0, 2.0]
        stats = WindowedStats(window=100)
        for latency in latencies:
            stats.record(latency)
        ordered = sorted(latencies)
        for q in (0.5, 0.9, 0.95, 1.0):
            expected = ordered[math.ceil(q * len(ordered)) - 1]
            assert stats.percentile_latency_ms(q) == expected

    def test_stale_and_empty_serve_counts_once_in_union_rate(self):
        # A cached-empty entry in a churned category is ONE degraded
        # serve; the union rate must not double-count (or exceed 1.0).
        stats = WindowedStats()
        stats.record(1.0, hit=True, stale=True, empty=True)
        assert stats.lifetime_stale_or_empty_rate == 1.0
        stats.record(1.0)
        assert stats.lifetime_stale_or_empty_rate == 0.5
        assert stats.total_stale == stats.total_empty == stats.total_stale_or_empty == 1

    def test_empty_and_invalid(self):
        stats = WindowedStats()
        assert stats.p99_latency_ms() == 0.0
        assert stats.mean_latency_ms() == 0.0
        assert stats.hit_rate == 0.0
        assert stats.lifetime_stale_or_empty_rate == 0.0
        with pytest.raises(ValueError):
            stats.percentile_latency_ms(0.0)
        with pytest.raises(ValueError):
            WindowedStats(window=0)


class TestFreshnessController:
    def make_cache(self, clock, ttl=10.0):
        return RewriteCache(ttl_seconds=ttl, clock=clock.now)

    def test_on_churn_invalidates_and_repopulates_affected_category(self):
        clock = VirtualClock()
        cache = self.make_cache(clock)
        rewriter = CountingRewriter({"old phone": ["mobile phone"], "red shoe": ["sneaker"]})
        head = {"old phone": "phone", "red shoe": "shoe"}
        cache.put("old phone", ["stale rewrite"])
        cache.put("red shoe", ["stale rewrite"])
        controller = FreshnessController(cache, rewriter, head)

        clock.advance(5.0)
        assert controller.on_churn({"phone"}) == 1
        # The phone entry was re-populated with a fresh stamp...
        assert cache.get("old phone") == ["mobile phone"]
        assert cache.stored_at("old phone") == 5.0
        # ...the shoe entry was left alone.
        assert cache.get("red shoe") == ["stale rewrite"]
        assert cache.stored_at("red shoe") == 0.0
        assert controller.report.invalidated == 1
        assert controller.report.refreshed == 1

    def test_repopulate_never_stores_unservable_entries(self):
        clock = VirtualClock()
        cache = self.make_cache(clock)
        rewriter = CountingRewriter({})  # no rewrites for anything
        cache.put("old phone", ["stale"])
        controller = FreshnessController(cache, rewriter, {"old phone": "phone"})
        controller.on_churn({"phone"})
        assert cache.get("old phone") is None  # invalidated, not re-stored
        assert controller.report.invalidated == 1
        assert controller.report.refreshed == 0

    def test_tick_purges_and_refreshes_ahead(self):
        clock = VirtualClock()
        cache = self.make_cache(clock, ttl=10.0)
        rewriter = CountingRewriter({"head": ["fresh rewrite"]})
        controller = FreshnessController(
            cache, rewriter, {"head": "phone"}, refresh_margin_seconds=3.0
        )
        cache.put("head", ["old rewrite"])   # expires at t=10
        cache.put("orphan", ["whatever"])    # not managed; expires at t=10

        clock.advance(5.0)
        controller.tick()  # far from expiry: nothing happens
        assert controller.report.proactive_refreshed == 0
        assert cache.get("head") == ["old rewrite"]

        clock.advance(3.0)  # t=8, inside the 3s margin
        controller.tick()
        assert controller.report.proactive_refreshed == 1
        assert cache.stored_at("head") == 8.0  # re-stamped ahead of expiry

        clock.advance(4.0)  # t=12: orphan expired, head still live
        controller.tick()
        assert controller.report.purged_expired == 1
        assert cache.get("head") == ["fresh rewrite"]

    def test_tick_interval_rate_limits_scans(self):
        clock = VirtualClock()
        cache = self.make_cache(clock, ttl=100.0)
        rewriter = CountingRewriter({"head": ["r"]})
        controller = FreshnessController(
            cache,
            rewriter,
            {"head": "phone"},
            refresh_margin_seconds=1000.0,  # every tick would refresh
            tick_interval_seconds=10.0,
        )
        cache.put("head", ["r"])
        controller.tick()  # does work, schedules next at t=10
        calls_after_first = rewriter.calls
        clock.advance(5.0)
        controller.tick()  # inside the interval: no scan
        assert rewriter.calls == calls_after_first
        clock.advance(5.0)
        controller.tick()  # t=10: scans again
        assert rewriter.calls > calls_after_first

    def test_invalid_construction(self):
        clock = VirtualClock()
        cache = self.make_cache(clock)
        with pytest.raises(ValueError):
            FreshnessController(cache, CountingRewriter(), {}, refresh_margin_seconds=-1)
        with pytest.raises(ValueError):
            FreshnessController(cache, CountingRewriter(), {}, tick_interval_seconds=-1)


def build_small_replay(seed=0):
    generator = CatalogGenerator(CatalogConfig(products_per_category=4, seed=seed))
    catalog = generator.generate()
    click_log = ClickLogSimulator(
        catalog,
        config=ClickLogConfig(num_sessions=300, intent_pool_size=60, seed=seed),
    ).simulate()
    config = ReplayConfig(
        num_requests=400,
        batch_size=16,
        churn_every=100,
        churn_adds=3,
        churn_removes=3,
        seconds_per_request=0.5,
        seed=seed,
    )
    return generator, click_log, TrafficReplay(click_log, generator, config)


def build_stack(generator, replay, ttl=60.0, with_freshness=False):
    catalog = generator.generate()
    engine = ShardedSearchEngine(
        catalog, SearchConfig(max_candidates=10), num_shards=2, parallel=False
    )
    clock = VirtualClock()
    cache = RewriteCache(ttl_seconds=ttl, clock=clock.now)
    rewriter = RuleBasedRewriter(alias_to_canonical())
    cache.populate(rewriter, list(replay.head_queries()), k=3)
    pipeline = ServingPipeline(
        cache,
        rewriter,
        ServingConfig(cache_model_results=True),
        search_engine=engine,
    )
    controller = (
        FreshnessController(cache, rewriter, replay.head_queries())
        if with_freshness
        else None
    )
    return engine, clock, pipeline, controller


class TestTrafficReplay:
    def test_schedule_is_deterministic(self):
        _, _, first = build_small_replay(seed=3)
        _, _, second = build_small_replay(seed=3)
        assert first.head_queries() == second.head_queries()
        assert first.num_churn_events == second.num_churn_events
        first_events = [
            (kind, [r.query for r in payload]) if kind == "batch"
            else (kind, payload.removed, tuple(p.product_id for p in payload.added))
            for kind, payload in first._schedule
        ]
        second_events = [
            (kind, [r.query for r in payload]) if kind == "batch"
            else (kind, payload.removed, tuple(p.product_id for p in payload.added))
            for kind, payload in second._schedule
        ]
        assert first_events == second_events

    def test_replay_end_to_end_baseline_vs_freshness(self):
        generator, _, replay = build_small_replay()
        engine, clock, pipeline, _ = build_stack(generator, replay)
        baseline = replay.run(pipeline, clock, arm="baseline")
        engine.close()
        engine, clock, pipeline, controller = build_stack(
            generator, replay, with_freshness=True
        )
        fresh = replay.run(pipeline, clock, controller, arm="freshness")
        engine.close()

        assert baseline.requests == fresh.requests == 400
        assert baseline.churn_events == fresh.churn_events == replay.num_churn_events > 0
        # The sharded index followed churn: probes never surface delisted docs.
        assert baseline.dead_doc_hits == 0
        assert fresh.dead_doc_hits == 0
        assert baseline.searches > 0
        # Tier counters account every request exactly once.
        assert (
            baseline.cache_served + baseline.model_served + baseline.unserved
            == baseline.requests
        )
        # The controller can only reduce stale serves on the same stream.
        assert fresh.stats.total_stale <= baseline.stats.total_stale
        assert fresh.freshness is not None
        assert baseline.freshness is None

    def test_arrival_trace_is_monotone_and_deterministic(self):
        _, _, replay = build_small_replay(seed=5)
        trace = replay.arrival_trace()
        assert trace == replay.arrival_trace()
        times = [at for _, at, _ in trace]
        assert times == sorted(times)
        kinds = [kind for kind, _, _ in trace]
        assert kinds.count("request") == replay.config.num_requests
        assert kinds.count("churn") == replay.num_churn_events
        # Same request content as the pre-batched schedule, in order.
        batched = [
            request.query
            for kind, payload in replay._schedule
            if kind == "batch"
            for request in payload
        ]
        assert [p.query for k, _, p in trace if k == "request"] == batched

    def test_scheduled_replay_end_to_end(self):
        generator, _, replay = build_small_replay()
        engine, clock, pipeline, _ = build_stack(generator, replay)
        report = replay.run_scheduled(
            pipeline,
            clock,
            SchedulerConfig(max_batch_size=16, max_wait_seconds=1.0),
            arm="scheduled",
        )
        engine.close()
        assert report.requests == 400
        assert report.scheduler is not None
        assert report.scheduler.completed == 400
        assert report.scheduler.admitted == 400
        assert report.scheduler.shed == 0
        assert report.scheduler.batches > 400 / 16 - 1
        # Worker is infinitely fast (no service model), so the deadline
        # bound is exact for every request.
        assert (
            max(report.scheduler.queue_delays_seconds) <= 1.0 + 1e-12
        )
        assert report.searches > 0
        assert report.dead_doc_hits == 0
        assert report.churn_events == replay.num_churn_events
        assert (
            report.cache_served + report.model_served + report.unserved
            == report.requests
        )
        assert pipeline.stats.admitted == 400
        assert pipeline.stats.shed == 0

    def test_scheduled_replay_is_deterministic(self):
        def run_once():
            generator, _, replay = build_small_replay(seed=11)
            engine, clock, pipeline, _ = build_stack(generator, replay)
            report = replay.run_scheduled(
                pipeline,
                clock,
                SchedulerConfig(max_batch_size=8, max_wait_seconds=0.8),
            )
            engine.close()
            return report.scheduler.fingerprint(), pipeline.stats.counters()

        first_fp, first_counters = run_once()
        second_fp, second_counters = run_once()
        assert first_fp == second_fp
        assert first_counters == second_counters

    def test_replay_requires_churn_capable_engine(self):
        generator, _, replay = build_small_replay()
        pipeline = ServingPipeline(RewriteCache(), None)  # no engine at all
        with pytest.raises(ValueError):
            replay.run(pipeline, VirtualClock())
        with pytest.raises(ValueError):
            replay.run_scheduled(pipeline, VirtualClock())

    def test_invalid_config_rejected(self):
        generator, click_log, _ = build_small_replay()
        with pytest.raises(ValueError):
            TrafficReplay(click_log, generator, ReplayConfig(num_requests=0))


class TestClockConformance:
    """Property suite for the clock protocol, over BOTH implementations.

    ``WallClock`` must be a drop-in for ``VirtualClock`` wherever the
    caller drives time explicitly: latched ``now()`` reads are stable
    between mutations, ``advance`` is exact, and negative deltas raise.
    Only ``sync()`` (WallClock's own extension) folds real time in.
    """

    @pytest.mark.parametrize("clock_cls", [VirtualClock, WallClock])
    def test_negative_advance_raises(self, clock_cls):
        with pytest.raises(ValueError):
            clock_cls().advance(-1e-9)

    @pytest.mark.parametrize("clock_cls", [VirtualClock, WallClock])
    def test_custom_start_anchors_now(self, clock_cls):
        assert clock_cls(start=10.0).now() == 10.0

    @given(
        deltas=hyp_st.lists(
            hyp_st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            max_size=30,
        )
    )
    @hyp_settings(max_examples=100, deadline=None)
    def test_advance_is_exact_and_monotone_for_both(self, deltas):
        virtual, wall = VirtualClock(), WallClock()
        for clock in (virtual, wall):
            expected = 0.0
            for delta in deltas:
                before = clock.now()
                after = clock.advance(delta)
                expected += delta
                assert after == clock.now()
                assert after >= before
                assert after == pytest.approx(expected, abs=1e-6)
        # the two implementations agree step for step under advance()
        assert virtual.now() == pytest.approx(wall.now(), abs=1e-6)

    def test_wall_clock_reads_are_latched(self):
        clock = WallClock()
        first = clock.now()
        # real time moves; the latch must not (until a sync)
        time.sleep(0.002)
        assert clock.now() == first

    def test_wall_clock_sync_is_monotone_and_folds_real_time(self):
        clock = WallClock()
        a = clock.sync()
        time.sleep(0.002)
        b = clock.sync()
        assert b >= a
        assert b > 0.0
        assert clock.now() == b

    def test_wall_clock_advance_ahead_of_real_time_wins(self):
        """The drain path: advance() may outrun real time; sync() then
        holds the latch until real time catches up (never backwards)."""
        clock = WallClock()
        far = clock.advance(3600.0)
        assert clock.sync() == far
        assert clock.now() == far


class TestFingerprintRegression:
    """Hard-pinned digests: the refactor-proof byte-identity gates.

    These digests were recorded when the ``WallClock`` front door landed;
    any change to scheduler batching, admission, serving tiers, replay
    trace generation or scenario accounting that shifts a single counter
    will break them.  If a change is *intentional*, re-pin the digests in
    the same commit that changes the behaviour."""

    SCHEDULER_DIGEST = (
        "a894a35b63dea7fabf4f117475b930a4d5f5f8d48e2bcdd1a6d5b70899d0c694"
    )
    COUNTERS_DIGEST = (
        "70bdc0b3bf3573971010a208ff618d54fa76482610b2d9cc1198bd7d1c6dfd0b"
    )
    SCENARIO_DIGEST = (
        "ba12bc8e55dc4ed90fb5a4006b0743f5a9cd17bcee48adcec72949ad8e90cbbc"
    )

    @staticmethod
    def _digest(value) -> str:
        return hashlib.sha256(repr(value).encode()).hexdigest()

    def test_scheduled_replay_fingerprint_is_pinned(self):
        generator, _, replay = build_small_replay(seed=11)
        engine, clock, pipeline, _ = build_stack(generator, replay)
        report = replay.run_scheduled(
            pipeline,
            clock,
            SchedulerConfig(max_batch_size=8, max_wait_seconds=0.8),
        )
        engine.close()
        assert self._digest(report.scheduler.fingerprint()) == (
            self.SCHEDULER_DIGEST
        )
        counters = sorted(
            pipeline.stats.counters().items(), key=lambda kv: kv[0]
        )
        assert self._digest(counters) == self.COUNTERS_DIGEST

    def test_multi_tenant_scenario_fingerprint_is_pinned(self):
        from repro.online import ScenarioConfig, run_scenario

        outcome = run_scenario("multi_tenant", ScenarioConfig().scaled(0.04))
        assert self._digest(outcome.fingerprint()) == self.SCENARIO_DIGEST
