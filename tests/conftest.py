"""Shared fixtures: tiny marketplaces and models sized for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import MarketplaceConfig, generate_marketplace
from repro.data.catalog import CatalogConfig
from repro.data.clicklog import ClickLogConfig
from repro.models import ModelConfig, TransformerNMT


TINY_MODEL = ModelConfig(
    vocab_size=64,
    d_model=16,
    num_heads=2,
    d_ff=32,
    encoder_layers=1,
    decoder_layers=1,
    dropout=0.0,
    max_len=48,
    seed=0,
)


@pytest.fixture(scope="session")
def tiny_market():
    """A small but complete marketplace (catalog, clicks, vocab, splits)."""
    return generate_marketplace(
        MarketplaceConfig(
            catalog=CatalogConfig(products_per_category=6),
            clicks=ClickLogConfig(num_sessions=1200, intent_pool_size=120),
            seed=7,
        )
    )


@pytest.fixture(scope="session")
def trained_pair(tiny_market):
    """A briefly joint-trained forward/backward transformer pair."""
    from repro.training import CyclicConfig, CyclicTrainer

    vocab_size = len(tiny_market.vocab)
    forward = TransformerNMT(TINY_MODEL.scaled(vocab_size=vocab_size, seed=0))
    backward = TransformerNMT(TINY_MODEL.scaled(vocab_size=vocab_size, seed=1))
    trainer = CyclicTrainer(
        forward,
        backward,
        tiny_market.train_pairs,
        tiny_market.vocab,
        CyclicConfig(
            batch_size=16,
            max_steps=120,
            beam_width=2,
            top_n=5,
            warmup_steps=90,
            max_title_len=12,
            seed=0,
        ),
    )
    trainer.train(120)
    return forward, backward, trainer


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture()
def tiny_model_config(tiny_market):
    return TINY_MODEL.scaled(vocab_size=len(tiny_market.vocab))
