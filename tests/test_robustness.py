"""Failure injection and edge cases across the stack."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CyclicRewriter, RewriterConfig
from repro.data.dataset import pad_batch
from repro.models import ModelConfig, TransformerNMT
from repro.text import Vocabulary


class TestOutOfVocabulary:
    def test_rewriter_handles_unknown_tokens(self, trained_pair, tiny_market):
        """A query full of never-seen tokens must not crash the pipeline —
        it encodes to UNK and still flows through both hops."""
        forward, backward, _ = trained_pair
        rewriter = CyclicRewriter(
            forward, backward, tiny_market.vocab,
            RewriterConfig(k=2, top_n=5, max_title_len=10, max_query_len=6, seed=0),
        )
        results = rewriter.rewrite("zzzunknownzz qqqneverseenqq")
        assert isinstance(results, list)
        for result in results:
            assert "<unk>" not in result.tokens  # decoder never emits UNK? it may
            # at minimum the result decodes to plain tokens
            assert all(isinstance(t, str) for t in result.tokens)

    def test_vocab_encodes_oov_to_unk(self):
        vocab = Vocabulary(["known"])
        ids = vocab.encode(["alien", "known"], add_eos=False)
        assert ids[0] == vocab.unk_id
        assert ids[1] == vocab.token_to_id("known")


class TestDegenerateInputs:
    def test_single_token_source(self, trained_pair, tiny_market):
        forward, _, _ = trained_pair
        vocab = tiny_market.vocab
        src = np.array([vocab.encode(["phone"], add_eos=True)])
        from repro.decoding import greedy_decode

        hyp = greedy_decode(forward, src, max_len=8)
        assert isinstance(hyp.tokens, tuple)

    def test_model_rejects_overlong_sequence(self):
        config = ModelConfig(vocab_size=32, d_model=16, num_heads=2, d_ff=32,
                             encoder_layers=1, decoder_layers=1, max_len=8, seed=0)
        model = TransformerNMT(config)
        too_long = np.arange(4, 14).reshape(1, -1)  # 10 > max_len 8
        with pytest.raises(ValueError):
            model.forward(too_long, np.array([[1, 5]]))

    def test_loss_on_batch_of_one(self, tiny_market):
        config = ModelConfig(vocab_size=len(tiny_market.vocab), d_model=16,
                             num_heads=2, d_ff=32, encoder_layers=1,
                             decoder_layers=1, seed=0)
        model = TransformerNMT(config)
        src = np.array([tiny_market.forward_corpus.sources[0]])
        tgt = np.array([tiny_market.forward_corpus.targets[0]])
        loss, count = model.loss(src, tgt[:, :-1], tgt[:, 1:])
        assert count > 0
        assert np.isfinite(loss.item())


class TestNumericalStability:
    def test_training_on_extreme_initial_lr_recovers(self, tiny_market):
        """Gradient clipping keeps even an aggressive schedule finite."""
        from repro.training import SeparateTrainer, TrainingConfig

        config = ModelConfig(vocab_size=len(tiny_market.vocab), d_model=16,
                             num_heads=2, d_ff=32, encoder_layers=1,
                             decoder_layers=1, seed=0)
        model = TransformerNMT(config)
        trainer = SeparateTrainer(
            model, tiny_market.forward_corpus,
            TrainingConfig(max_steps=20, learning_rate_factor=5.0, grad_clip=1.0, seed=0),
        )
        trainer.train(20)
        for _, p in model.named_parameters():
            assert np.all(np.isfinite(p.data))

    def test_sequence_log_prob_no_nan_on_hard_targets(self, trained_pair, tiny_market):
        forward, _, _ = trained_pair
        vocab = tiny_market.vocab
        # An implausible target sequence gets a very low but finite score.
        src = np.array([tiny_market.forward_corpus.sources[0]])
        weird = np.array([[vocab.sos_id] + [vocab.unk_id] * 6 + [vocab.eos_id]])
        lp = forward.sequence_log_prob(src, weird)
        assert np.all(np.isfinite(lp))
        assert lp[0] < -5.0


class TestStateDictAcrossModels:
    def test_roundtrip_preserves_decode(self, trained_pair, tiny_market):
        """Save/load must preserve behaviour exactly."""
        forward, _, _ = trained_pair
        clone = TransformerNMT(forward.config)
        clone.load_state_dict(forward.state_dict())
        clone.eval()
        forward.eval()
        src = np.array([tiny_market.forward_corpus.sources[0]])
        from repro.decoding import greedy_decode

        assert greedy_decode(forward, src, max_len=10).tokens == \
            greedy_decode(clone, src, max_len=10).tokens

    def test_cross_architecture_load_fails(self, tiny_market):
        a = TransformerNMT(ModelConfig(vocab_size=len(tiny_market.vocab), d_model=16,
                                       num_heads=2, d_ff=32, encoder_layers=1,
                                       decoder_layers=1, seed=0))
        b = TransformerNMT(ModelConfig(vocab_size=len(tiny_market.vocab), d_model=16,
                                       num_heads=2, d_ff=32, encoder_layers=2,
                                       decoder_layers=1, seed=0))
        with pytest.raises(KeyError):
            b.load_state_dict(a.state_dict())


@settings(max_examples=30, deadline=None)
@given(
    lengths=st.lists(st.integers(1, 12), min_size=1, max_size=8),
    pad_id=st.integers(0, 3),
)
def test_property_pad_batch_shape_and_content(lengths, pad_id):
    sequences = [list(range(10, 10 + n)) for n in lengths]
    out = pad_batch(sequences, pad_id=pad_id)
    assert out.shape == (len(lengths), max(lengths))
    for row, seq in zip(out, sequences):
        assert row[: len(seq)].tolist() == seq
        assert all(v == pad_id for v in row[len(seq):])


@settings(max_examples=30, deadline=None)
@given(tokens=st.lists(st.sampled_from(["a", "b", "c", "dd", "ee"]), min_size=0, max_size=10))
def test_property_vocab_roundtrip(tokens):
    vocab = Vocabulary(["a", "b", "c", "dd", "ee"])
    ids = vocab.encode(tokens, add_sos=True, add_eos=True)
    assert vocab.decode(ids) == tokens
