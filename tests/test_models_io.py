"""Checkpoint save/load and the A/B significance test."""

import numpy as np
import pytest

from repro.models import ModelConfig, TransformerNMT, load_weights, save_weights


class TestCheckpointing:
    def _model(self, seed=0):
        return TransformerNMT(
            ModelConfig(vocab_size=32, d_model=16, num_heads=2, d_ff=32,
                        encoder_layers=1, decoder_layers=1, seed=seed)
        )

    def test_roundtrip(self, tmp_path):
        model = self._model(seed=0)
        path = tmp_path / "ckpt.npz"
        save_weights(model, path)
        other = self._model(seed=9)
        assert not np.allclose(
            model.embedding.weight.data, other.embedding.weight.data
        )
        load_weights(other, path)
        for (name_a, p_a), (name_b, p_b) in zip(
            model.named_parameters(), other.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_allclose(p_a.data, p_b.data)

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "ckpt.npz"
        save_weights(self._model(), path)
        assert path.exists()

    def test_architecture_mismatch_raises(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_weights(self._model(), path)
        wrong = TransformerNMT(
            ModelConfig(vocab_size=32, d_model=16, num_heads=2, d_ff=32,
                        encoder_layers=2, decoder_layers=1, seed=0)
        )
        with pytest.raises(KeyError):
            load_weights(wrong, path)

    def test_behaviour_preserved(self, tmp_path):
        model = self._model(seed=0).eval()  # eval: dropout must be off
        src = np.array([[5, 6, 7, 2]])
        tgt_in = np.array([[1, 8, 9]])
        from repro.autograd import no_grad

        with no_grad():
            before = model.forward(src, tgt_in).data.copy()
        path = tmp_path / "ckpt.npz"
        save_weights(model, path)
        clone = self._model(seed=5).eval()
        load_weights(clone, path)
        with no_grad():
            after = clone.forward(src, tgt_in).data
        np.testing.assert_allclose(before, after)


class TestABSignificance:
    def _report(self, n=400, lift=0.05, seed=0):
        from repro.evaluation.abtest import ABTestReport, ArmMetrics

        rng = np.random.default_rng(seed)
        control = ArmMetrics()
        variation = ArmMetrics()
        for _ in range(n):
            base = rng.random() < 0.2
            control.record(base, 10.0 * base, not base)
            better = base or (rng.random() < lift)
            variation.record(better, 10.0 * better, not better)
        return ABTestReport(control=control, variation=variation)

    def test_real_lift_is_significant(self):
        report = self._report(n=800, lift=0.15)
        sig = report.significance("UCVR", resamples=500)
        assert sig["delta"] > 0
        assert sig["p_value"] < 0.05
        assert sig["ci_low"] > 0

    def test_zero_lift_is_not_significant(self):
        report = self._report(n=400, lift=0.0)
        sig = report.significance("UCVR", resamples=500)
        assert sig["ci_low"] <= 0 <= sig["ci_high"] or abs(sig["delta"]) < 1e-12

    def test_all_metrics_supported(self):
        report = self._report()
        for metric in ("UCVR", "GMV", "QRR"):
            sig = report.significance(metric, resamples=100)
            assert set(sig) == {"delta", "ci_low", "ci_high", "p_value"}

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            self._report().significance("CTR")

    def test_empty_sessions_rejected(self):
        from repro.evaluation.abtest import ABTestReport, ArmMetrics

        report = ABTestReport(control=ArmMetrics(), variation=ArmMetrics())
        with pytest.raises(ValueError):
            report.significance("UCVR")
