"""Tier-1 gateway soak: the socket path IS the virtual-clock replay.

A small deterministic trace is driven through a **live** gateway on an
ephemeral loopback port by concurrent HTTP clients, and the identical
trace is replayed in process on a :class:`VirtualClock`.  The pinned
claim: with the soak's order-independent configuration, the per-tenant
``ServingStats.counters()`` of the two arms are **byte-identical** —
plus zero HTTP 500s, schema-valid responses end to end, and a drain
receipt that conserves every admitted request.

``benchmarks/test_gateway_soak.py`` holds the acceptance-scale bars
(mid-soak drain, client-count sweeps, micro-batched conservation); this
file keeps a fast version of the headline claims in the tier-1 suite,
and exercises the ``gateway_soak`` scenario arm + workload builder.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.gateway.soak import (
    SoakConfig,
    build_workload,
    run_gateway_arm,
    run_soak,
    run_twin_arm,
)
from repro.online import ScenarioConfig, run_scenario

#: one small soak shared by the whole file (sockets are not free)
SMALL = SoakConfig(seed=0, num_requests=96, sessions_per_tenant=120)


@pytest.fixture(scope="module")
def outcome():
    """Run the small soak once; every test reads the same outcome."""
    return run_soak(SMALL)


class TestSoakConformance:
    def test_counters_byte_identical_across_the_socket(self, outcome):
        assert outcome.identical, (
            outcome.gateway_counters,
            outcome.twin_counters,
        )

    def test_zero_500s_and_every_request_answered_200(self, outcome):
        assert outcome.http_500s == 0
        assert outcome.responses_by_status == {"200": outcome.requests}

    def test_every_response_schema_valid(self, outcome):
        assert outcome.schema_failures == 0

    def test_drain_receipt_conserves_every_admitted_request(self, outcome):
        receipt = outcome.receipt
        assert outcome.lost_requests == 0
        assert receipt["admitted"] == receipt["completed"] + receipt["shed"]
        assert receipt["admitted"] == outcome.requests
        assert receipt["shed"] == 0

    def test_gateway_stats_tally_the_soak(self, outcome):
        stats = outcome.gateway_stats
        # every trace request plus the final stats/drain round trips
        assert stats["http_requests"] >= outcome.requests
        assert stats["drains"] == 1
        assert stats["responses_by_status"].get("500", 0) == 0


class TestDeterminism:
    def test_twin_arm_is_deterministic(self):
        items, _ = build_workload(SMALL)
        assert run_twin_arm(SMALL, items) == run_twin_arm(SMALL, items)

    def test_workload_is_deterministic_and_interleaved(self):
        items, heads = build_workload(SMALL)
        again, _ = build_workload(SMALL)
        assert items == again
        assert len(items) == SMALL.num_requests
        assert set(heads) == set(SMALL.tenants)
        # round-robin interleave: both tenants appear in every window
        tenants_seen = {item.tenant for item in items[: len(SMALL.tenants)]}
        assert tenants_seen == set(SMALL.tenants)
        # the probe cadence is positional, so search mix is fixed
        kinds = {item.kind for item in items}
        assert kinds == {"rewrite", "search"}

    def test_seed_changes_the_fingerprint(self):
        items, _ = build_workload(SMALL)
        other_config = SoakConfig(
            seed=SMALL.seed + 1,
            num_requests=SMALL.num_requests,
            sessions_per_tenant=SMALL.sessions_per_tenant,
        )
        other_items, _ = build_workload(other_config)
        assert run_twin_arm(SMALL, items) != run_twin_arm(
            other_config, other_items
        )


class TestConcurrencyInsensitivity:
    def test_two_client_counts_agree(self):
        """The byte-equality claim requires interleaving-insensitivity;
        1 vs 3 concurrent clients must produce identical counters."""
        items, _ = build_workload(SMALL)
        counters = []
        for clients in (1, 3):
            config = SoakConfig(
                seed=SMALL.seed,
                num_requests=SMALL.num_requests,
                sessions_per_tenant=SMALL.sessions_per_tenant,
                clients=clients,
            )
            serving, by_status, schema_failures, _, _ = asyncio.run(
                run_gateway_arm(config, items)
            )
            assert by_status == {"200": len(items)}
            assert schema_failures == 0
            counters.append(serving)
        assert counters[0] == counters[1]


class TestScenarioArm:
    def test_gateway_soak_arm_passes_at_smoke_scale(self):
        outcome = run_scenario("gateway_soak", ScenarioConfig().scaled(0.04))
        assert outcome.passed, [str(r) for r in outcome.failures()]
        names = {result.name for result in outcome.invariants}
        assert {
            "socket_counters_byte_identical",
            "zero_http_500s",
            "all_responses_schema_valid",
            "every_request_answered_200",
            "zero_lost_requests",
            "soak_sheds_nothing",
        } <= names
        totals = outcome.totals()
        assert totals["admitted"] + totals["shed"] == totals["submitted"]
        assert totals["shed"] == 0


class TestSoakConfigValidation:
    def test_rejects_degenerate_values(self):
        with pytest.raises(ValueError):
            SoakConfig(num_requests=0)
        with pytest.raises(ValueError):
            SoakConfig(tenants=())
        with pytest.raises(ValueError):
            SoakConfig(clients=0)
        with pytest.raises(ValueError):
            SoakConfig(search_every=0)
