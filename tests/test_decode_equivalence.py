"""Equivalence and regression suite for the incremental decode path.

Pins the three contracts of the KV-cached rework (``docs/DECODING.md``):

* **step ≡ forward** — cached incremental step logits match the
  teacher-forced full forward (and the uncached step path) to 1e-6 for
  every model, so the fast path is the slow path, reassociated;
* **reorder invariance** — permuting/duplicating/compacting a cached
  state mid-decode and continuing is exact, so beam shuffles and
  active-row compaction never change results;
* **decoder equivalence + bugfixes** — the optimized decoders return
  token-identical hypotheses vs the frozen seed implementations in
  ``repro.decoding.reference``, while fixing the seed's empty-pool NaN
  crash and zombie-row stepping (regression tests here fail against the
  pre-fix behaviour by construction: the frozen reference exhibits it).
"""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.decoding import (
    beam_search,
    beam_search_batch,
    greedy_decode,
    greedy_decode_batch,
    sample_top_n_pools,
    top_n_sampling,
    top_n_sampling_batch,
)
from repro.decoding import reference
from repro.models import HybridNMT, ModelConfig, RecurrentNMT, TransformerNMT
from repro.models.base import DecodeState, Seq2SeqModel

VOCAB = 48
LOGIT_TOL = 1e-6  # float-reassociation gate for the cached transformer path


def _config(seed: int = 3) -> ModelConfig:
    return ModelConfig(
        vocab_size=VOCAB, d_model=32, num_heads=4, d_ff=64,
        encoder_layers=2, decoder_layers=2, max_len=64, dropout=0.0, seed=seed,
    )


@pytest.fixture(scope="module", params=["transformer", "hybrid", "recurrent"])
def model(request):
    cls = {
        "transformer": TransformerNMT,
        "hybrid": HybridNMT,
        "recurrent": RecurrentNMT,
    }[request.param]
    m = cls(_config())
    m.eval()
    return m


@pytest.fixture(scope="module")
def src():
    """Padded batch with ragged true lengths (rows 1 and 2 end early)."""
    rng = np.random.default_rng(11)
    out = rng.integers(3, VOCAB, size=(4, 7))
    out[1, 5:] = 0
    out[2, 3:] = 0
    return out


def _hyp_tokens(hyps):
    return [(h.tokens, h.finished) for h in hyps]


def _assert_hyps_equivalent(new, old):
    """Token-for-token identical; log-probs equal up to reassociation."""
    assert _hyp_tokens(new) == _hyp_tokens(old)
    for a, b in zip(new, old):
        assert a.log_prob == pytest.approx(b.log_prob, abs=1e-9)


# -- step ≡ forward ----------------------------------------------------------

def test_cached_steps_match_teacher_forced_forward(model, src):
    rng = np.random.default_rng(5)
    tgt = np.concatenate(
        [np.full((src.shape[0], 1), model.sos_id, dtype=np.int64),
         rng.integers(3, VOCAB, size=(src.shape[0], 5))],
        axis=1,
    )
    with no_grad():
        full = model.forward(src, tgt).data
    state = model.start(src)
    for t in range(tgt.shape[1]):
        logits, state = model.step(state, tgt[:, t])
        np.testing.assert_allclose(logits, full[:, t, :], atol=LOGIT_TOL, rtol=0)


def test_cached_and_uncached_step_logits_match(model, src):
    cached = model.start(src)
    uncached = model.start(src, use_cache=False)
    # The uncached state is the seed payload: no incremental caches.
    assert "self_kv" not in uncached.payload
    assert "mem_keys" not in uncached.payload
    tokens = np.full(src.shape[0], model.sos_id, dtype=np.int64)
    for _ in range(6):
        logits_c, cached = model.step(cached, tokens)
        logits_u, uncached = model.step(uncached, tokens)
        np.testing.assert_allclose(logits_c, logits_u, atol=LOGIT_TOL, rtol=0)
        tokens = logits_c.argmax(axis=1)


# -- reorder invariance ------------------------------------------------------

def test_reorder_permutation_and_duplication_mid_decode(model, src):
    """Shuffle + duplicate rows of a cached state mid-decode; continuing
    must equal a teacher-forced forward over each row's actual prefix."""
    rng = np.random.default_rng(7)
    batch = src.shape[0]
    prefixes = [[model.sos_id] for _ in range(batch)]
    state = model.start(src)
    for _ in range(3):
        tokens = np.array([p[-1] for p in prefixes], dtype=np.int64)
        _, state = model.step(state, tokens)
        for i, tok in enumerate(rng.integers(3, VOCAB, size=batch)):
            prefixes[i].append(int(tok))
    index = np.array([2, 0, 1, 1, 3])  # permute + duplicate row 1
    state = state.reorder(index, model)
    prefixes = [list(prefixes[i]) for i in index]
    last_logits = None
    for _ in range(2):
        tokens = np.array([p[-1] for p in prefixes], dtype=np.int64)
        last_logits, state = model.step(state, tokens)
        for i, tok in enumerate(rng.integers(3, VOCAB, size=len(index))):
            prefixes[i].append(int(tok))
    tgt = np.array([p[:-1] for p in prefixes], dtype=np.int64)
    with no_grad():
        full = model.forward(src[index], tgt).data
    np.testing.assert_allclose(last_logits, full[:, -1, :], atol=LOGIT_TOL, rtol=0)


def test_compaction_keeps_surviving_rows_exact(model, src):
    """Dropping rows mid-decode (active-row compaction) must not change
    the surviving rows' logits relative to stepping the full batch."""
    tokens = np.full(src.shape[0], model.sos_id, dtype=np.int64)
    full_state = model.start(src)
    logits, full_state = model.step(full_state, tokens)
    nxt = logits.argmax(axis=1)
    keep = np.array([0, 2, 3])
    compact_state = full_state.reorder(keep, model)
    for _ in range(3):
        logits_full, full_state = model.step(full_state, nxt)
        logits_compact, compact_state = model.step(compact_state, nxt[keep])
        np.testing.assert_allclose(
            logits_compact, logits_full[keep], atol=LOGIT_TOL, rtol=0
        )
        nxt = logits_full.argmax(axis=1)


# -- decoder equivalence vs the frozen seed implementations ------------------

def test_greedy_batch_matches_reference(model, src):
    new = greedy_decode_batch(model, src, max_len=12)
    old = reference.greedy_decode_batch_reference(model, src, max_len=12)
    _assert_hyps_equivalent(new, old)


def test_topn_batch_matches_reference(model, src):
    new = top_n_sampling_batch(
        model, src, k=3, n=8, max_len=12, rng=np.random.default_rng(42)
    )
    old = reference.top_n_sampling_batch_reference(
        model, src, k=3, n=8, max_len=12, rng=np.random.default_rng(42)
    )
    assert [_hyp_tokens(g) for g in new] == [_hyp_tokens(g) for g in old]
    for ga, gb in zip(new, old):
        for a, b in zip(ga, gb):
            assert a.log_prob == pytest.approx(b.log_prob, abs=1e-9)


def test_topn_single_matches_reference(model, src):
    new = top_n_sampling(
        model, src[:1], k=3, n=8, max_len=12, rng=np.random.default_rng(9)
    )
    old = reference.top_n_sampling_reference(
        model, src[:1], k=3, n=8, max_len=12, rng=np.random.default_rng(9)
    )
    _assert_hyps_equivalent(new, old)


def test_beam_matches_reference(model, src):
    new = beam_search_batch(model, src, beam_size=3, max_len=12)
    old = reference.beam_search_batch_reference(model, src, beam_size=3, max_len=12)
    assert [_hyp_tokens(g) for g in new] == [_hyp_tokens(g) for g in old]
    single_new = beam_search(model, src[:1], beam_size=3, max_len=12)
    single_old = reference.beam_search_reference(model, src[:1], beam_size=3, max_len=12)
    _assert_hyps_equivalent(single_new, single_old)


# -- batch vs single under ragged finish times -------------------------------

def test_batch_matches_single_under_ragged_finish(model, src):
    """Every batch decoder must agree with its per-source form even when
    sources finish at very different steps (compaction reshuffles rows)."""
    for s in range(src.shape[0]):
        row = src[s : s + 1]
        batch_greedy = greedy_decode_batch(model, src, max_len=12)[s]
        single_greedy = greedy_decode(model, row, max_len=12)
        _assert_hyps_equivalent([batch_greedy], [single_greedy])
        batch_beam = beam_search_batch(model, src, beam_size=3, max_len=10)[s]
        single_beam = beam_search(model, row, beam_size=3, max_len=10)
        assert _hyp_tokens(batch_beam) == _hyp_tokens(single_beam)
        batch_topn = top_n_sampling_batch(
            model, row, k=3, n=8, max_len=10, rng=np.random.default_rng(17)
        )[0]
        single_topn = top_n_sampling(
            model, row, k=3, n=8, max_len=10, rng=np.random.default_rng(17)
        )
        _assert_hyps_equivalent(batch_topn, single_topn)


# -- the vectorized sampler's RNG contract -----------------------------------

def test_sample_top_n_pools_replicates_per_row_choice():
    """The batched sampler must consume the exact RNG stream of the
    per-row argsort + ``rng.choice`` loop it replaced."""
    rng = np.random.default_rng(123)
    log_probs = np.log(rng.dirichlet(np.ones(20), size=16))
    log_probs[:, :2] = -np.inf  # blocked columns
    n = 7
    new_rng = np.random.default_rng(99)
    choices, legal = sample_top_n_pools(new_rng, log_probs.copy(), n)
    assert legal.all()
    old_rng = np.random.default_rng(99)
    for i in range(log_probs.shape[0]):
        row = log_probs[i]
        pool = np.argsort(-row)[:n]
        pool_logp = row[pool]
        probs = np.exp(pool_logp - pool_logp.max())
        probs /= probs.sum()
        expected = int(pool[old_rng.choice(len(pool), p=probs)])
        assert int(choices[i]) == expected
    # Both consumed exactly one uniform per row: streams stay in lockstep.
    assert new_rng.random() == old_rng.random()


def test_sample_top_n_pools_illegal_rows_consume_no_randomness():
    log_probs = np.full((3, 10), -np.inf)
    log_probs[1, 4] = -0.5  # only row 1 has a legal pool
    rng = np.random.default_rng(7)
    choices, legal = sample_top_n_pools(rng, log_probs, 4)
    assert list(legal) == [False, True, False]
    assert choices[1] == 4
    assert (choices[[0, 2]] == -1).all()
    # exactly one deviate was drawn (row 1's)
    assert rng.random() == np.random.default_rng(7).random(2)[1]


# -- regression: empty-pool NaN crash & zombie-row stepping ------------------

class ScriptedModel(Seq2SeqModel):
    """Deterministic stub whose step logits are scripted by (source, t).

    Vocabulary layout: 0=PAD, 1=SOS, 2=EOS, 3.. real tokens.  The state
    payload carries each row's source id and per-row step counter, both
    reordered like any cached array, so compaction/permutation behave
    exactly like a real model's.
    """

    def __init__(self, script, vocab_size: int = 6):
        super().__init__(vocab_size, pad_id=0, sos_id=1, eos_id=2)
        self.script = script

    def start(self, src, use_cache: bool = True):
        src = np.asarray(src)
        return DecodeState(
            batch_size=src.shape[0],
            payload={
                "sid": np.arange(src.shape[0]),
                "t": np.zeros(src.shape[0], dtype=np.int64),
            },
        )

    def step(self, state, last_tokens):
        self._count_step(state.batch_size)
        sid, t = state.payload["sid"], state.payload["t"]
        logits = np.stack(
            [self.script(int(s), int(step)) for s, step in zip(sid, t)]
        )
        return logits, DecodeState(
            batch_size=state.batch_size, payload={"sid": sid, "t": t + 1}
        )

    def reorder_state(self, state, index):
        return DecodeState(
            batch_size=len(index),
            payload={key: value[index] for key, value in state.payload.items()},
        )


def _one_hot(vocab, hot, scale=10.0):
    row = np.full(vocab, -1e9)
    row[hot] = scale
    return row


def test_topn_empty_pool_finishes_gracefully_instead_of_nan_crash():
    """Seed behaviour: an all-``-inf`` legal pool renormalizes to NaN and
    ``rng.choice`` raises.  The fixed sampler retires the candidate
    unfinished, draws nothing, and the frozen reference still crashes —
    which is exactly what makes this test fail against pre-fix code."""

    def script(sid, t):
        if t == 0:
            row = np.full(6, -1e9)
            row[3], row[4] = 3.0, 2.0  # two legal first tokens
            return row
        # Afterwards only PAD is finite; PAD is always blocked, so the
        # masked pool is empty for every candidate.
        row = np.full(6, -np.inf)
        row[0] = 0.0
        return row

    src = np.array([[3, 2]])
    rng = np.random.default_rng(5)
    hyps = top_n_sampling(ScriptedModel(script), src, k=2, n=4, max_len=6, rng=rng)
    assert [h.tokens for h in hyps] == [(3,), (4,)]
    assert all(not h.finished for h in hyps)
    # No randomness was consumed anywhere in the decode.
    assert rng.random() == np.random.default_rng(5).random()
    # The frozen seed implementation crashes on the same input.
    with pytest.raises(ValueError), np.errstate(invalid="ignore"):
        reference.top_n_sampling_reference(
            ScriptedModel(script), src, k=2, n=4, max_len=6,
            rng=np.random.default_rng(5),
        )


class DeadFirstCandidateModel(ScriptedModel):
    """Step logits keyed on the row's previous token: a row whose last
    token is 3 gets an empty legal pool (dead); any other row samples
    from tokens {5, 6}."""

    def step(self, state, last_tokens):
        self._count_step(state.batch_size)
        sid, t = state.payload["sid"], state.payload["t"]
        rows = []
        for step, tok in zip(t, np.asarray(last_tokens)):
            if step == 0:
                row = np.full(8, -1e9)
                row[3], row[4] = 3.0, 2.0  # first tokens: 3 then 4
            elif tok == 3:
                row = np.full(8, -np.inf)
                row[0] = 0.0  # only PAD finite -> empty legal pool
            else:
                row = np.full(8, -1e9)
                row[5], row[6] = 4.0, 1.0
            rows.append(row)
        return np.stack(rows), DecodeState(
            batch_size=state.batch_size, payload={"sid": sid, "t": t + 1}
        )


def test_topn_one_dead_candidate_leaves_other_streams_intact():
    """A candidate hitting an empty pool must not shift the surviving
    candidates' RNG draws (it consumes none and is compacted away)."""
    src = np.array([[3, 2]])
    hyps = top_n_sampling(
        DeadFirstCandidateModel(None, vocab_size=8), src, k=2, n=4,
        max_len=4, rng=np.random.default_rng(21),
    )
    assert [h.tokens[0] for h in hyps] == [3, 4]
    assert hyps[0].tokens == (3,) and not hyps[0].finished  # died at step 2
    assert len(hyps[1].tokens) == 4  # kept sampling to the budget
    assert all(tok in (5, 6) for tok in hyps[1].tokens[1:])
    # The survivor's continuation must match a run where the dead row
    # never existed: same draws, taken from the same stream positions.
    solo = top_n_sampling(
        DeadFirstCandidateModel(None, vocab_size=8), np.array([[4, 2]]),
        k=2, n=4, max_len=4, rng=np.random.default_rng(21),
    )
    # solo decodes candidates starting 3 (dies) and 4 under the same rng;
    # the surviving candidate's tokens must be identical draw-for-draw.
    assert solo[1].tokens == hyps[1].tokens


def test_greedy_batch_compacts_finished_rows():
    """Sources finishing early must stop costing model rows (the seed
    kept stepping them on their stale pre-EOS token); outputs unchanged."""
    finish_at = [0, 4]

    def script(sid, t):
        return _one_hot(6, 2 if t >= finish_at[sid] else 3)

    src = np.array([[3, 2], [4, 2]])
    new_model = ScriptedModel(script)
    hyps = greedy_decode_batch(new_model, src, max_len=8)
    ref_model = ScriptedModel(script)
    ref_hyps = reference.greedy_decode_batch_reference(ref_model, src, max_len=8)
    _assert_hyps_equivalent(hyps, ref_hyps)
    assert hyps[0].tokens == () and hyps[0].finished
    assert hyps[1].tokens == (3, 3, 3, 3) and hyps[1].finished
    # Compaction shows up in the work accounting; the reference steps the
    # full width every step.  Pre-fix greedy behaved like the reference,
    # so this inequality is exactly what fails on pre-fix code.
    assert ref_model.decode_rows == 2 * 5
    assert new_model.decode_rows < ref_model.decode_rows
    assert new_model.decode_rows == 2 + 4  # both rows once, then row 1 alone


def test_beam_batch_compacts_inactive_sources():
    """A source whose beams all finish must stop being stepped for batch
    rectangularity; the seed kept its rows alive as zombies."""

    def script(sid, t):
        if t == 0:
            row = np.full(6, -1e9)
            row[3], row[4] = 2.0, 1.0
            return row
        if sid == 0:
            return _one_hot(6, 2)  # EOS for every beam: source retires
        row = np.full(6, -1e9)
        row[3], row[4] = 2.0, 1.0
        if t >= 5:
            row = _one_hot(6, 2)
        return row

    src = np.array([[3, 2], [4, 2]])
    new_model = ScriptedModel(script)
    results = beam_search_batch(new_model, src, beam_size=2, max_len=8)
    ref_model = ScriptedModel(script)
    ref_results = reference.beam_search_batch_reference(
        ref_model, src, beam_size=2, max_len=8
    )
    assert [_hyp_tokens(g) for g in results] == [_hyp_tokens(g) for g in ref_results]
    # Source 0 finished both beams at step 1; its rows must vanish from
    # the decode batch afterwards.  The reference (= pre-fix behaviour)
    # steps batch×beam rows every step, so equality here fails pre-fix.
    assert new_model.decode_rows < ref_model.decode_rows
