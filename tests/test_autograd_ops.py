"""Gradient correctness of every autograd op (vs numerical differentiation)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import (
    Tensor,
    concat,
    logsumexp,
    maximum,
    minimum,
    stack,
    where,
)

from tests.helpers import assert_grad_matches


class TestArithmetic:
    def test_add(self):
        assert_grad_matches(lambda a, b: (a + b).sum(), (3, 4), (3, 4))

    def test_add_broadcast(self):
        assert_grad_matches(lambda a, b: ((a + b) * a).sum(), (3, 4), (4,))

    def test_add_scalar_broadcast(self):
        assert_grad_matches(lambda a, b: ((a + b) ** 2).sum(), (2, 3), (1,))

    def test_radd_constant(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        out = (1.0 + t).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 2)))

    def test_sub(self):
        assert_grad_matches(lambda a, b: ((a - b) ** 2).sum(), (3, 4), (3, 4))

    def test_rsub(self):
        t = Tensor(np.full((2,), 3.0), requires_grad=True)
        out = (10.0 - t).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, -np.ones(2))

    def test_mul(self):
        assert_grad_matches(lambda a, b: (a * b * a).sum(), (3, 4), (3, 4))

    def test_mul_broadcast(self):
        assert_grad_matches(lambda a, b: (a * b).sum(), (2, 3, 4), (4,))

    def test_div(self):
        assert_grad_matches(
            lambda a, b: (a / (b * b + 1.0)).sum(), (3, 3), (3, 3)
        )

    def test_rdiv(self):
        t = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        out = (8.0 / t).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, [-2.0, -0.5])

    def test_neg(self):
        assert_grad_matches(lambda a: (-a * a).sum(), (4,))

    def test_pow(self):
        assert_grad_matches(lambda a: ((a * a + 1.0) ** 3).sum(), (3,))

    def test_pow_tensor_exponent_rejected(self):
        t = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(TypeError):
            t ** Tensor(np.ones(2))


class TestMatmul:
    def test_2d(self):
        assert_grad_matches(lambda a, b: (a @ b).sum(), (3, 4), (4, 5))

    def test_batched(self):
        assert_grad_matches(lambda a, b: ((a @ b) ** 2).sum(), (2, 3, 4), (2, 4, 5))

    def test_broadcast_batch(self):
        assert_grad_matches(lambda a, b: (a @ b).sum(), (2, 3, 4), (4, 5))

    def test_vector_vector(self):
        assert_grad_matches(lambda a, b: a @ b, (4,), (4,))

    def test_vector_matrix(self):
        assert_grad_matches(lambda a, b: (a @ b).sum(), (4,), (4, 3))

    def test_matrix_vector(self):
        assert_grad_matches(lambda a, b: (a @ b).sum(), (3, 4), (4,))

    def test_4d_attention_shape(self):
        assert_grad_matches(
            lambda q, k: ((q @ k.swapaxes(-1, -2)).softmax(-1)).sum(),
            (2, 2, 3, 4),
            (2, 2, 3, 4),
        )


class TestElementwise:
    def test_exp(self):
        assert_grad_matches(lambda a: a.exp().sum(), (3, 3))

    def test_log(self):
        assert_grad_matches(lambda a: (a * a + 1.0).log().sum(), (3, 3))

    def test_sqrt(self):
        assert_grad_matches(lambda a: (a * a + 1.0).sqrt().sum(), (3, 3))

    def test_tanh(self):
        assert_grad_matches(lambda a: a.tanh().sum(), (3, 3))

    def test_sigmoid(self):
        assert_grad_matches(lambda a: a.sigmoid().sum(), (3, 3))

    def test_sigmoid_extreme_values_stable(self):
        t = Tensor(np.array([-500.0, 0.0, 500.0]))
        out = t.sigmoid().data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)

    def test_relu(self):
        t = Tensor(np.array([-2.0, -0.5, 0.5, 2.0]), requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 0.0, 1.0, 1.0])

    def test_gelu(self):
        assert_grad_matches(lambda a: a.gelu().sum(), (5,), atol=1e-3)


class TestReductions:
    def test_sum_all(self):
        assert_grad_matches(lambda a: (a.sum() ** 2), (3, 4))

    def test_sum_axis(self):
        assert_grad_matches(lambda a: (a.sum(axis=1) ** 2).sum(), (3, 4))

    def test_sum_keepdims(self):
        assert_grad_matches(lambda a: (a / a.sum(axis=-1, keepdims=True)).sum(), (3, 4))

    def test_mean(self):
        assert_grad_matches(lambda a: (a.mean(axis=0) ** 2).sum(), (3, 4))

    def test_mean_all(self):
        assert_grad_matches(lambda a: a.mean() ** 2, (3, 4))

    def test_max_axis(self):
        # Use distinct values so the max subgradient is unambiguous.
        rng = np.random.default_rng(3)
        data = rng.permutation(12).reshape(3, 4).astype(float)
        t = Tensor(data.copy(), requires_grad=True)
        t.max(axis=1).sum().backward()
        expected = np.zeros((3, 4))
        expected[np.arange(3), data.argmax(axis=1)] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_max_tie_splits_gradient(self):
        t = Tensor(np.array([[1.0, 1.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])


class TestSoftmaxFamily:
    def test_softmax_grad(self):
        assert_grad_matches(lambda a: (a.softmax(-1) ** 2).sum(), (3, 5))

    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        np.testing.assert_allclose(t.softmax(-1).data.sum(axis=-1), np.ones(4))

    def test_softmax_shift_invariant(self):
        x = np.random.default_rng(0).normal(size=(2, 5))
        a = Tensor(x).softmax(-1).data
        b = Tensor(x + 1000.0).softmax(-1).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_grad(self):
        assert_grad_matches(lambda a: (a.log_softmax(-1) ** 2).sum(), (3, 5))

    def test_log_softmax_matches_log_of_softmax(self):
        x = np.random.default_rng(1).normal(size=(3, 6))
        np.testing.assert_allclose(
            Tensor(x).log_softmax(-1).data,
            np.log(Tensor(x).softmax(-1).data),
            atol=1e-12,
        )

    def test_logsumexp_grad(self):
        assert_grad_matches(lambda a: logsumexp(a, axis=-1).sum(), (3, 5))

    def test_logsumexp_extreme_values(self):
        t = Tensor(np.array([[1000.0, 1000.0], [-1000.0, -999.0]]))
        out = logsumexp(t, axis=-1).data
        np.testing.assert_allclose(
            out, [1000.0 + np.log(2.0), np.logaddexp(-1000.0, -999.0)]
        )


class TestShapeOps:
    def test_reshape(self):
        assert_grad_matches(lambda a: (a.reshape(2, 6) ** 2).sum(), (3, 4))

    def test_reshape_tuple_arg(self):
        t = Tensor(np.arange(6.0), requires_grad=True)
        assert t.reshape((2, 3)).shape == (2, 3)

    def test_transpose(self):
        assert_grad_matches(lambda a: (a.transpose(1, 0) @ a).sum(), (3, 4))

    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)

    def test_swapaxes(self):
        assert_grad_matches(lambda a: (a.swapaxes(0, 2) ** 2).sum(), (2, 3, 4))

    def test_getitem_slice(self):
        assert_grad_matches(lambda a: (a[:, 1:3] ** 2).sum(), (3, 5))

    def test_getitem_fancy(self):
        idx = (np.array([0, 1, 1]), np.array([2, 0, 0]))
        # Repeated index (1,0) must accumulate gradient.
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        t[idx].sum().backward()
        expected = np.zeros((2, 3))
        expected[0, 2] = 1.0
        expected[1, 0] = 2.0
        np.testing.assert_allclose(t.grad, expected)

    def test_take_rows(self):
        assert_grad_matches(
            lambda a: (a.take_rows(np.array([[0, 2], [1, 1]])) ** 2).sum(), (4, 3)
        )

    def test_take_rows_repeated_accumulates(self):
        t = Tensor(np.ones((3, 2)), requires_grad=True)
        t.take_rows(np.array([1, 1, 1])).sum().backward()
        np.testing.assert_allclose(t.grad, [[0, 0], [3, 3], [0, 0]])

    def test_concat(self):
        assert_grad_matches(
            lambda a, b: (concat([a, b], axis=1) ** 2).sum(), (2, 3), (2, 4)
        )

    def test_concat_axis0(self):
        assert_grad_matches(
            lambda a, b: (concat([a, b], axis=0) ** 2).sum(), (2, 3), (4, 3)
        )

    def test_stack(self):
        assert_grad_matches(
            lambda a, b: (stack([a, b], axis=1) ** 2).sum(), (2, 3), (2, 3)
        )

    def test_masked_fill(self):
        mask = np.array([[True, False, True], [False, False, True]])
        assert_grad_matches(lambda a: (a.masked_fill(mask, -5.0) ** 2).sum(), (2, 3))

    def test_masked_fill_blocks_gradient(self):
        mask = np.array([True, False])
        t = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        t.masked_fill(mask, 0.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0])

    def test_where(self):
        mask = np.array([[True, False, True]])
        assert_grad_matches(
            lambda a, b: (where(mask, a, b) ** 2).sum(), (2, 3), (2, 3)
        )

    def test_maximum_minimum(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 2.0]), requires_grad=True)
        maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])
        a.zero_grad(); b.zero_grad()
        minimum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_property_softmax_cross_entropy_grad_bounded(rows, cols, seed):
    """Softmax+NLL gradients are (p - onehot): always in [-1, 1]."""
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(rows, cols)) * 5, requires_grad=True)
    targets = rng.integers(0, cols, size=rows)
    nll = -logits.log_softmax(-1)[np.arange(rows), targets]
    nll.sum().backward()
    assert np.all(logits.grad <= 1.0 + 1e-9)
    assert np.all(logits.grad >= -1.0 - 1e-9)


@settings(max_examples=25, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 3), st.integers(1, 4)),
    seed=st.integers(0, 10_000),
)
def test_property_sum_of_parts_equals_whole(shape, seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=shape), requires_grad=True)
    total = x.sum()
    by_axis = x.sum(axis=0).sum()
    np.testing.assert_allclose(float(total.data), float(by_axis.data), atol=1e-9)
