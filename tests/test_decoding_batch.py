"""Batched decoding: stacked-source variants match their per-source forms."""

import numpy as np
import pytest

from repro.decoding import (
    beam_search,
    beam_search_batch,
    greedy_decode,
    greedy_decode_batch,
    top_n_sampling,
    top_n_sampling_batch,
)
from repro.models import HybridNMT, ModelConfig
from repro.models.base import pad_sources


@pytest.fixture(scope="module")
def model():
    """A small untrained hybrid model: decode behaviour is deterministic
    in its seed, which is all batching parity needs."""
    m = HybridNMT(
        ModelConfig(
            vocab_size=40, d_model=16, num_heads=2, d_ff=32,
            encoder_layers=1, decoder_layers=1, dropout=0.0, seed=0,
        )
    )
    m.eval()
    return m


@pytest.fixture(scope="module")
def sources():
    """Variable-length sources (EOS-terminated), forcing pad in the batch."""
    rng = np.random.default_rng(3)
    return [
        list(rng.integers(3, 40, size=int(n))) + [2] for n in rng.integers(2, 7, size=6)
    ]


class TestPadSources:
    def test_pads_to_longest(self):
        out = pad_sources([[4, 5], [6]], pad_id=0)
        np.testing.assert_array_equal(out, [[4, 5], [6, 0]])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            pad_sources([], pad_id=0)


class TestGreedyBatch:
    def test_matches_per_source_greedy(self, model, sources):
        batch = greedy_decode_batch(model, sources, max_len=8)
        assert len(batch) == len(sources)
        for src, from_batch in zip(sources, batch):
            single = greedy_decode(model, np.array([src]), max_len=8)
            assert from_batch.tokens == single.tokens
            assert from_batch.log_prob == pytest.approx(single.log_prob)
            assert from_batch.finished == single.finished

    def test_accepts_padded_array(self, model, sources):
        padded = pad_sources(sources, model.pad_id)
        batch = greedy_decode_batch(model, padded, max_len=8)
        assert len(batch) == len(sources)


class TestBeamBatch:
    def test_matches_per_source_beam(self, model, sources):
        batch = beam_search_batch(model, sources, beam_size=3, max_len=8)
        for src, from_batch in zip(sources, batch):
            single = beam_search(model, np.array([src]), beam_size=3, max_len=8)
            assert [h.tokens for h in from_batch] == [h.tokens for h in single]
            for a, b in zip(from_batch, single):
                assert a.log_prob == pytest.approx(b.log_prob)

    def test_invalid_beam_size(self, model, sources):
        with pytest.raises(ValueError):
            beam_search_batch(model, sources, beam_size=0)


class TestTopNBatch:
    def test_k_diverse_candidates_per_source(self, model, sources):
        grouped = top_n_sampling_batch(
            model, sources, k=3, n=5, max_len=8, rng=np.random.default_rng(0)
        )
        assert len(grouped) == len(sources)
        for hyps in grouped:
            assert len(hyps) == 3
            firsts = [h.tokens[0] for h in hyps]
            assert len(set(firsts)) == 3  # Figure 4 step 1 per source

    def test_never_emits_special_or_forbidden(self, model, sources):
        grouped = top_n_sampling_batch(
            model, sources, k=3, n=5, max_len=8,
            rng=np.random.default_rng(1), forbid_tokens=(7,),
        )
        for hyps in grouped:
            for hyp in hyps:
                for banned in (model.pad_id, model.sos_id, model.eos_id, 7):
                    assert banned not in hyp.tokens

    def test_singleton_batch_matches_single_source(self, model, sources):
        single = top_n_sampling(
            model, np.array([sources[0]]), k=3, n=5, max_len=8,
            rng=np.random.default_rng(7),
        )
        batch = top_n_sampling_batch(
            model, [sources[0]], k=3, n=5, max_len=8,
            rng=np.random.default_rng(7),
        )[0]
        assert [h.tokens for h in single] == [h.tokens for h in batch]
        assert [h.log_prob for h in single] == pytest.approx(
            [h.log_prob for h in batch]
        )

    def test_seeded_reproducibility(self, model, sources):
        a = top_n_sampling_batch(
            model, sources, k=2, n=5, max_len=8, rng=np.random.default_rng(5)
        )
        b = top_n_sampling_batch(
            model, sources, k=2, n=5, max_len=8, rng=np.random.default_rng(5)
        )
        assert [[h.tokens for h in hyps] for hyps in a] == [
            [h.tokens for h in hyps] for hyps in b
        ]

    def test_invalid_params(self, model, sources):
        with pytest.raises(ValueError):
            top_n_sampling_batch(model, sources, k=0, n=3)
        with pytest.raises(ValueError):
            top_n_sampling_batch(model, sources, k=2, n=0)


class TestRewriteBatch:
    """DirectRewriter.rewrite_batch over a real (untrained) model."""

    @pytest.fixture(scope="class")
    def rewriter(self, tiny_market):
        from repro.core import DirectRewriter, RewriterConfig

        model = HybridNMT(
            ModelConfig(
                vocab_size=len(tiny_market.vocab), d_model=16, num_heads=2,
                d_ff=32, encoder_layers=1, decoder_layers=1, dropout=0.0, seed=0,
            )
        )
        model.eval()
        return DirectRewriter(
            model, tiny_market.vocab,
            RewriterConfig(k=3, top_n=5, max_query_len=8, seed=0),
        )

    def test_one_result_list_per_query_in_order(self, rewriter, tiny_market):
        queries = [r.text for r in list(tiny_market.click_log.queries.values())[:5]]
        results = rewriter.rewrite_batch(queries, k=3)
        assert len(results) == len(queries)
        for query, rewrites in zip(queries, results):
            assert len(rewrites) <= 3
            for result in rewrites:
                assert result.text != query

    def test_empty_queries_get_empty_lists(self, rewriter):
        results = rewriter.rewrite_batch(["", "laptop computer", ""])
        assert results[0] == []
        assert results[2] == []

    def test_all_empty_batch(self, rewriter):
        assert rewriter.rewrite_batch(["", ""]) == [[], []]
