"""Quickstart: train a cyclic query-rewriting model and rewrite queries.

Runs end-to-end in about a minute on a laptop CPU:

1. generate a synthetic e-commerce marketplace (catalog + click log);
2. jointly train the forward (query-to-title) and backward (title-to-query)
   transformers with the paper's cyclic-consistency objective (Algorithm 1);
3. rewrite a few hard colloquial queries through the two-hop pipeline
   (Figure 3) and print the results with their synthetic-title provenance.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro.core import CyclicRewriter, RewriterConfig
from repro.data import MarketplaceConfig, generate_marketplace
from repro.data.catalog import CatalogConfig
from repro.data.clicklog import ClickLogConfig
from repro.models import ModelConfig, TransformerNMT
from repro.training import CyclicConfig, CyclicTrainer

HARD_QUERIES = [
    "cellphone for grandpa",
    "comfortable ah-di sneaker",
    "formula for newborn",
    "a computer for school",
    "gift perfume for girlfriend",
]


def main() -> None:
    print("== 1. Generating the synthetic marketplace ==")
    market = generate_marketplace(
        MarketplaceConfig(
            catalog=CatalogConfig(products_per_category=20),
            clicks=ClickLogConfig(num_sessions=6000, intent_pool_size=400),
            seed=0,
        )
    )
    stats = market.click_log.statistics()
    print(
        f"  {stats['num_query_item_pairs']:.0f} click pairs, "
        f"vocab {stats['vocab_size']:.0f}, "
        f"avg query {stats['avg_query_words']:.1f} words, "
        f"avg title {stats['avg_title_words']:.1f} words"
    )

    print("\n== 2. Training with cyclic consistency (Algorithm 1) ==")
    vocab_size = len(market.vocab)
    forward = TransformerNMT(
        ModelConfig(vocab_size=vocab_size, d_model=32, num_heads=4, d_ff=64,
                    encoder_layers=2, decoder_layers=2, dropout=0.0, seed=0)
    )
    backward = TransformerNMT(
        ModelConfig(vocab_size=vocab_size, d_model=32, num_heads=4, d_ff=64,
                    encoder_layers=1, decoder_layers=1, dropout=0.0, seed=1)
    )
    trainer = CyclicTrainer(
        forward, backward, market.train_pairs, market.vocab,
        CyclicConfig(batch_size=16, warmup_steps=170, max_steps=340,
                     beam_width=3, top_n=5, max_title_len=14, seed=0),
    )
    started = time.time()
    trainer.train()
    print(
        f"  trained {trainer.step_count} steps in {time.time() - started:.0f}s "
        f"(forward loss {trainer.history.last('loss_forward'):.2f}, "
        f"backward loss {trainer.history.last('loss_backward'):.2f}, "
        f"cyclic loss {trainer.history.last('loss_cyclic'):.2f})"
    )

    print("\n== 3. Rewriting hard queries (Figure 3 pipeline) ==")
    rewriter = CyclicRewriter(
        forward, backward, market.vocab,
        RewriterConfig(k=3, top_n=5, max_title_len=14, max_query_len=8, seed=0),
    )
    for query in HARD_QUERIES:
        results = rewriter.rewrite(query)
        print(f"\n  {query!r}")
        if not results:
            print("    (no rewrite)")
        for result in results:
            print(f"    -> {result.text!r}   (log prob {result.log_prob:.1f})")
            print(f"       via title: {' '.join(result.via_title)[:70]!r}")


if __name__ == "__main__":
    main()
