"""Two-tier online serving (paper Section III-G).

JD's deployment: rewrites for the top 8M queries are precomputed into a
key-value store (<5 ms, >80% of traffic); the long tail is served by a fast
direct query-to-query model — a transformer encoder with an RNN decoder,
because Table V shows the transformer *decoder* is the latency bottleneck.

This example builds both tiers over zipf-distributed traffic and prints the
tier shares and latencies.

Usage::

    python examples/online_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    CyclicRewriter,
    DirectRewriter,
    RewriteCache,
    RewriterConfig,
    ServingConfig,
    ServingPipeline,
)
from repro.data import MarketplaceConfig, generate_marketplace
from repro.data.catalog import CatalogConfig
from repro.data.clicklog import ClickLogConfig
from repro.data.dataset import ParallelCorpus
from repro.models import HybridNMT, ModelConfig, TransformerNMT
from repro.training import CyclicConfig, CyclicTrainer, SeparateTrainer, TrainingConfig


def main() -> None:
    market = generate_marketplace(
        MarketplaceConfig(
            catalog=CatalogConfig(products_per_category=20),
            clicks=ClickLogConfig(num_sessions=6000, intent_pool_size=400),
            seed=0,
        )
    )
    vocab = market.vocab

    print("== offline: training the two-hop rewriter for head queries ==")
    forward = TransformerNMT(
        ModelConfig(vocab_size=len(vocab), d_model=32, num_heads=4, d_ff=64,
                    encoder_layers=2, decoder_layers=2, dropout=0.0, seed=0))
    backward = TransformerNMT(
        ModelConfig(vocab_size=len(vocab), d_model=32, num_heads=4, d_ff=64,
                    encoder_layers=1, decoder_layers=1, dropout=0.0, seed=1))
    CyclicTrainer(
        forward, backward, market.train_pairs, vocab,
        CyclicConfig(batch_size=16, warmup_steps=150, max_steps=260,
                     beam_width=3, top_n=5, max_title_len=14, seed=0),
    ).train()
    offline_rewriter = CyclicRewriter(
        forward, backward, vocab,
        RewriterConfig(k=3, top_n=5, max_title_len=14, max_query_len=8, seed=0))

    print("== offline: training the direct q2q model for the long tail ==")
    q2q_model = HybridNMT(
        ModelConfig(vocab_size=len(vocab), d_model=32, num_heads=4, d_ff=64,
                    encoder_layers=1, decoder_layers=1, dropout=0.0, seed=2))
    q2q_corpus = ParallelCorpus.from_pairs(market.synonym_pairs, vocab)
    SeparateTrainer(q2q_model, q2q_corpus, TrainingConfig(max_steps=200, seed=0)).train()
    fallback = DirectRewriter(
        q2q_model, vocab, RewriterConfig(k=3, top_n=5, max_query_len=8, seed=0))

    # Head of the traffic distribution -> the cache tier.
    records = sorted(
        market.click_log.queries.values(), key=lambda r: (-r.total_clicks, r.text))
    head = [r.text for r in records[: len(records) // 3]]
    cache = RewriteCache()
    filled = cache.populate(offline_rewriter, head, k=3)
    print(f"  cache populated: {filled}/{len(head)} head queries")

    print("\n== online: replaying zipf traffic through the pipeline ==")
    pipeline = ServingPipeline(cache, fallback, ServingConfig(max_rewrites=3))
    rng = np.random.default_rng(0)
    weights = np.array([max(r.total_clicks, 1) for r in records], dtype=float)
    weights /= weights.sum()
    for _ in range(400):
        record = records[int(rng.choice(len(records), p=weights))]
        pipeline.serve(record.text)

    stats = pipeline.stats
    print(f"  requests          : {stats.total}")
    print(f"  cache tier        : {stats.cache_served / stats.total:.1%}")
    print(f"  q2q model tier    : {stats.model_served / stats.total:.1%}")
    print(f"  unserved          : {stats.unserved / stats.total:.1%}")
    print(f"  mean latency      : {stats.mean_latency_ms():.2f} ms")
    print(f"  p99 latency       : {stats.p99_latency_ms():.2f} ms")

    print("\n== sample served rewrites ==")
    for text in [records[0].text, records[len(records) // 2].text]:
        served = pipeline.serve(text)
        print(f"  [{served.source:5s}] {text!r} -> {served.rewrites}")


if __name__ == "__main__":
    main()
