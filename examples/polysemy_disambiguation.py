"""Polysemy: where learned rewriting beats the rule dictionary.

The paper's Section IV-C2 example: a human-curated dictionary maps "cherry"
to the keyboard-brand reading, so a user searching cherry *fruit* gets
keyboard rewrites.  The translation model instead reads the context tokens.

This example compares both methods on polysemous queries ("cherry",
"apple") in fruit vs electronics contexts, judged by the simulated labeler
against the ground-truth intent.

Usage::

    python examples/polysemy_disambiguation.py
"""

from __future__ import annotations

from repro.baselines import RuleBasedRewriter
from repro.core import CyclicRewriter, RewriterConfig
from repro.data import MarketplaceConfig, build_rule_dictionary, generate_marketplace
from repro.data.catalog import CatalogConfig
from repro.data.clicklog import ClickLogConfig
from repro.data.domain import Intent
from repro.evaluation import LabelerConfig, SimulatedLabeler
from repro.models import ModelConfig, TransformerNMT
from repro.training import CyclicConfig, CyclicTrainer

CASES = [
    ("cherry produce", Intent(category="fruit", brand="cherry")),
    ("sweet cherry fruit", Intent(category="fruit", brand="cherry")),
    ("cherry mechanical keypad", Intent(category="keyboard", brand="cherry")),
    ("apple fresh fruit", Intent(category="fruit", brand="apple")),
    ("apple cellphone", Intent(category="phone", brand="apple")),
]


def main() -> None:
    market = generate_marketplace(
        MarketplaceConfig(
            catalog=CatalogConfig(products_per_category=20),
            clicks=ClickLogConfig(num_sessions=6000, intent_pool_size=400),
            seed=0,
        )
    )
    vocab = market.vocab
    print("training the joint model...")
    forward = TransformerNMT(
        ModelConfig(vocab_size=len(vocab), d_model=32, num_heads=4, d_ff=64,
                    encoder_layers=2, decoder_layers=2, dropout=0.0, seed=0))
    backward = TransformerNMT(
        ModelConfig(vocab_size=len(vocab), d_model=32, num_heads=4, d_ff=64,
                    encoder_layers=1, decoder_layers=1, dropout=0.0, seed=1))
    CyclicTrainer(
        forward, backward, market.train_pairs, vocab,
        CyclicConfig(batch_size=16, warmup_steps=170, max_steps=340,
                     beam_width=3, top_n=5, max_title_len=14, seed=0),
    ).train()

    joint = CyclicRewriter(
        forward, backward, vocab,
        RewriterConfig(k=3, top_n=5, max_title_len=14, max_query_len=8, seed=0))
    rules = RuleBasedRewriter(build_rule_dictionary())
    labeler = SimulatedLabeler(market.catalog, LabelerConfig(noise=0.0))

    print(f"\n{'query':28s} {'method':6s} {'rewrites':44s} {'judge':>6s}")
    print("-" * 92)
    score = {"rule": 0.0, "joint": 0.0}
    for query, intent in CASES:
        for name, method in (("rule", rules), ("joint", joint)):
            rewrites = [r.text for r in method.rewrite(query, k=2)]
            relevance = labeler.best_relevance(intent, rewrites) if rewrites else 0.0
            score[name] += relevance
            display = "; ".join(rewrites)[:44] or "(none)"
            print(f"{query:28s} {name:6s} {display:44s} {relevance:6.2f}")
        print()
    print(f"total judge score — rule-based: {score['rule']:.2f}, joint model: {score['joint']:.2f}")
    print(
        "\nWhat to look for: the dictionary rewrites 'cherry' toward keyboards even\n"
        "in fruit contexts (the paper's §IV-C2 failure), while the model reads the\n"
        "context tokens and stays in the fruit category.  At this training scale\n"
        "the model sometimes trades away the brand/variety token (e.g. cherry ->\n"
        "orange), which the intent judge penalizes — the paper's full-scale model\n"
        "keeps it.  Totals above reflect whichever effect dominates on this seed."
    )


if __name__ == "__main__":
    main()
