"""Semantic matching: how rewrites fix inverted-index recall.

The paper's motivating failure: "it is almost impossible to retrieve items
titled 'senior mobile phones' for a query 'cellphone for grandpa'" — the
terms simply don't match.  This example measures that failure and the fix:

1. retrieve colloquial queries against the inverted index — low recall;
2. add model rewrites (merged into one syntax tree, Section III-H);
3. report relevant-recall before/after and the retrieval cost of the merged
   tree vs naive per-query trees.

Usage::

    python examples/semantic_matching_recall.py
"""

from __future__ import annotations

from repro.core import CyclicRewriter, RewriterConfig
from repro.data import MarketplaceConfig, generate_marketplace
from repro.data.catalog import CatalogConfig
from repro.data.clicklog import ClickLogConfig
from repro.data.domain import QueryStyle
from repro.models import ModelConfig, TransformerNMT
from repro.search import SearchEngine
from repro.training import CyclicConfig, CyclicTrainer


def train_rewriter(market):
    vocab_size = len(market.vocab)
    forward = TransformerNMT(
        ModelConfig(vocab_size=vocab_size, d_model=32, num_heads=4, d_ff=64,
                    encoder_layers=2, decoder_layers=2, dropout=0.0, seed=0)
    )
    backward = TransformerNMT(
        ModelConfig(vocab_size=vocab_size, d_model=32, num_heads=4, d_ff=64,
                    encoder_layers=1, decoder_layers=1, dropout=0.0, seed=1)
    )
    CyclicTrainer(
        forward, backward, market.train_pairs, market.vocab,
        CyclicConfig(batch_size=16, warmup_steps=170, max_steps=340,
                     beam_width=3, top_n=5, max_title_len=14, seed=0),
    ).train()
    return CyclicRewriter(
        forward, backward, market.vocab,
        RewriterConfig(k=3, top_n=5, max_title_len=14, max_query_len=8, seed=0),
    )


def relevant_count(catalog, intent, doc_ids, threshold=0.3) -> int:
    return sum(1 for d in doc_ids if intent.matches(catalog.get(d)) > threshold)


def main() -> None:
    market = generate_marketplace(
        MarketplaceConfig(
            catalog=CatalogConfig(products_per_category=20),
            clicks=ClickLogConfig(num_sessions=6000, intent_pool_size=400),
            seed=0,
        )
    )
    print("training the rewriter (about a minute)...")
    rewriter = train_rewriter(market)
    engine = SearchEngine(market.catalog)

    colloquial = [
        record
        for record in market.click_log.queries.values()
        if record.style in (QueryStyle.COLLOQUIAL, QueryStyle.NATURAL)
        and record.total_clicks >= 3
    ][:20]

    print(f"\n{'query':38s} {'base':>5s} {'+rewrites':>9s}  cost merged/separate")
    print("-" * 80)
    total_base = total_extended = 0
    for record in colloquial:
        rewrites = [r.text for r in rewriter.rewrite(record.text)]
        base = engine.search(record.text)
        extended = engine.search(record.text, rewrites)
        base_relevant = relevant_count(market.catalog, record.intent, base.doc_ids)
        extended_relevant = relevant_count(market.catalog, record.intent, extended.doc_ids)
        total_base += base_relevant
        total_extended += extended_relevant
        if rewrites:
            costs = engine.compare_costs(record.text, rewrites)
            ratio = f"{costs['postings_ratio']:.2f}"
        else:
            ratio = "-"
        print(f"{record.text[:38]:38s} {base_relevant:5d} {extended_relevant:9d}  {ratio}")

    print("-" * 80)
    lift = (total_extended - total_base) / max(1, total_base)
    print(
        f"relevant items retrieved: {total_base} -> {total_extended} "
        f"({lift:+.0%} recall from rewriting)"
    )


if __name__ == "__main__":
    main()
