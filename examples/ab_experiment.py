"""Online A/B experiment simulation (paper Section IV-D, Table VIII).

Control: inverted-index retrieval with the production rule-based rewriter.
Variation: control + at most 3 model rewrites per query, each adding extra
candidates; both arms share the ranker and the (simulated) users.

Prints the relative UCVR / GMV / QRR deltas in the paper's format.

Usage::

    python examples/ab_experiment.py
"""

from __future__ import annotations

from repro.baselines import RuleBasedRewriter
from repro.core import CyclicRewriter, RewriterConfig
from repro.data import MarketplaceConfig, build_rule_dictionary, generate_marketplace
from repro.data.catalog import CatalogConfig
from repro.data.clicklog import ClickLogConfig
from repro.evaluation import ABTestConfig, ABTestSimulator
from repro.models import ModelConfig, TransformerNMT
from repro.training import CyclicConfig, CyclicTrainer


def main() -> None:
    market = generate_marketplace(
        MarketplaceConfig(
            catalog=CatalogConfig(products_per_category=20),
            clicks=ClickLogConfig(num_sessions=6000, intent_pool_size=400),
            seed=0,
        )
    )
    vocab = market.vocab

    print("training the joint rewriting model...")
    forward = TransformerNMT(
        ModelConfig(vocab_size=len(vocab), d_model=32, num_heads=4, d_ff=64,
                    encoder_layers=2, decoder_layers=2, dropout=0.0, seed=0))
    backward = TransformerNMT(
        ModelConfig(vocab_size=len(vocab), d_model=32, num_heads=4, d_ff=64,
                    encoder_layers=1, decoder_layers=1, dropout=0.0, seed=1))
    CyclicTrainer(
        forward, backward, market.train_pairs, vocab,
        CyclicConfig(batch_size=16, warmup_steps=170, max_steps=340,
                     beam_width=3, top_n=5, max_title_len=14, seed=0),
    ).train()
    joint = CyclicRewriter(
        forward, backward, vocab,
        RewriterConfig(k=3, top_n=5, max_title_len=14, max_query_len=8, seed=0))

    query_pool = [
        (record.text, record.intent)
        for record in sorted(
            market.click_log.queries.values(), key=lambda r: (-r.total_clicks, r.text)
        )[:150]
    ]
    simulator = ABTestSimulator(
        market.catalog,
        query_pool,
        control_rewriter=RuleBasedRewriter(build_rule_dictionary()),
        variation_rewriter=joint,
        config=ABTestConfig(days=10, sessions_per_day=200, max_rewrites=3, seed=0),
    )
    print("running 10 simulated days of paired A/B traffic...")
    report = simulator.run()

    print("\n10-days online A/B test improvements (paper Table VIII format)")
    print(f"{'metric':6s} {'paper':>10s} {'measured':>12s}")
    paper = {"UCVR": 0.005219, "GMV": 0.011054, "QRR": -0.000397}
    for metric, value in report.as_row().items():
        print(f"{metric:6s} {paper[metric]:>+10.4%} {value:>+12.4%}")
    print(
        f"\ncontrol: UCVR {report.control.ucvr:.3f}, GMV {report.control.gmv:,.0f}, "
        f"QRR {report.control.qrr:.3f}"
    )
    print(
        f"variation: UCVR {report.variation.ucvr:.3f}, GMV {report.variation.gmv:,.0f}, "
        f"QRR {report.variation.qrr:.3f}"
    )
    print(
        "\n(Magnitudes are larger than the paper's: synthetic traffic is far "
        "heavier in hard colloquial queries than JD production traffic.)"
    )


if __name__ == "__main__":
    main()
